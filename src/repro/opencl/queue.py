"""Command queues, profiling events, and the queue scheduling model.

Queues come in the two OpenCL execution modes:

* **in-order** (the default, paper Section 6.2.1): commands drain
  strictly in enqueue order.  The runtime layer above keeps a single
  in-order queue per device — multiple queues per device showed read
  races on the authors' stack, and the same policy is reproduced here.
* **out-of-order** (``CL_QUEUE_OUT_OF_ORDER_EXEC_MODE``): commands form
  a dependency DAG — explicit event wait-lists plus inferred
  whole-buffer read/write hazards (RAW/WAR/WAW) — and a deterministic
  list scheduler places each command at the earliest point its
  dependencies and its device engine allow, so independent commands
  overlap on the schedule.  Barriers, markers and :meth:`finish` retain
  their OpenCL ordering semantics.

Commands *execute* synchronously at enqueue time in both modes, so
buffer contents — and the measured warp maxima the cost model prices —
are bit-identical regardless of mode; the scheduler only decides where
each command lands on the queue's schedule timeline.  Each command
returns an :class:`Event` carrying OpenCL-style profiling timestamps
(aggregated by the harness into the Figure 3 segments, identically in
both modes) plus its schedule placement (``sched_start_ns`` /
``sched_end_ns``), from which :attr:`CommandQueue.makespan_ns` and the
``queue.overlap_ns`` trace counter are derived.  See
docs/ARCHITECTURE.md ("The queue scheduling model") for the full
determinism argument.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence

from ..errors import (
    CLDeviceLost,
    CLError,
    CLInvalidContext,
    CLInvalidValue,
    CLInvalidWorkGroupSize,
)
from ..trace import current_tracer
from . import faults, fusion
from .context import Context
from .costmodel import TIMELINE_KIND_OF
from .dispatch import dispatch_kernel_ns
from .memory import Buffer
from .platform import Device

_event_ids = itertools.count(1)
_queue_ids = itertools.count(1)

# Command types (CL_COMMAND_*-style).
WRITE_BUFFER = "WRITE_BUFFER"
READ_BUFFER = "READ_BUFFER"
COPY_BUFFER = "COPY_BUFFER"
NDRANGE_KERNEL = "NDRANGE_KERNEL"
MARKER = "MARKER"
BARRIER = "BARRIER"

#: Queue-property flag enabling the out-of-order scheduler
#: (``clCreateCommandQueue(..., properties=[...])``).
CL_QUEUE_OUT_OF_ORDER_EXEC_MODE = "OUT_OF_ORDER_EXEC_MODE"

#: Device engine each command class occupies on the schedule: transfers
#: ride the two DMA directions, kernels and device-side copies the
#: compute engine.  Commands on different engines may overlap in
#: out-of-order mode; commands on one engine serialize.
ENGINE_OF = {
    WRITE_BUFFER: "dma_h2d",
    READ_BUFFER: "dma_d2h",
    COPY_BUFFER: "compute",
    NDRANGE_KERNEL: "compute",
}


class Event:
    """Profiling record of one enqueued command.

    Carries the four OpenCL profiling timestamps distinctly: QUEUED is
    when the host enqueued the command, SUBMIT when the (immediately
    flushed) queue handed it to the device — the same instant here —
    and START when the device actually began it, which is later than
    SUBMIT whenever the device was still busy with earlier work
    (queueing delay).  END = START + duration.

    Additionally carries the command's placement on its queue's
    schedule timeline (``sched_start_ns`` / ``sched_end_ns``, origin 0
    at queue creation): the serial chain position for an in-order
    queue, the list-scheduled position for an out-of-order one.  The
    same placement composed with host work and every other queue of the
    clock — the shared-origin end-to-end axis — is carried as
    ``e2e_start_ns`` / ``e2e_end_ns`` (see
    :class:`~repro.opencl.costmodel.ScheduleTimeline`).
    """

    def __init__(
        self,
        command: str,
        category: str,
        queued_ns: float,
        duration_ns: float,
        submit_ns: Optional[float] = None,
        start_ns: Optional[float] = None,
    ) -> None:
        self.id = next(_event_ids)
        self.command = command
        self.category = category  # 'h2d' | 'd2h' | 'kernel'
        self.queued_ns = queued_ns
        self.submit_ns = queued_ns if submit_ns is None else submit_ns
        self.start_ns = self.submit_ns if start_ns is None else start_ns
        self.end_ns = self.start_ns + duration_ns
        #: placement on the owning queue's schedule timeline
        self.sched_start_ns = 0.0
        self.sched_end_ns = duration_ns
        #: placement on the clock's composed end-to-end timeline
        self.e2e_start_ns = 0.0
        self.e2e_end_ns = duration_ns
        #: composed-timeline epoch the e2e placement belongs to
        self._e2e_epoch = 0

    @property
    def queue_delay_ns(self) -> float:
        """Time the command waited for the device (START - SUBMIT)."""
        return self.start_ns - self.submit_ns

    @property
    def duration_ns(self) -> float:
        """The command's priced duration (END - START)."""
        return self.end_ns - self.start_ns

    def profiling_info(self, name: str) -> float:
        """CL_PROFILING_COMMAND_{QUEUED,SUBMIT,START,END} lookup."""
        try:
            return {
                "QUEUED": self.queued_ns,
                "SUBMIT": self.submit_ns,
                "START": self.start_ns,
                "END": self.end_ns,
            }[name]
        except KeyError:
            raise CLInvalidValue(f"bad profiling info {name!r}") from None

    def __repr__(self) -> str:
        return f"<Event {self.id} {self.command} {self.duration_ns:.0f}ns>"


class _PendingKernel:
    """A kernel dispatch held back by the graph-level optimiser.

    With ``dispatch.configure(fusion=True)`` the queue keeps the most
    recent kernel enqueue pending until it learns whether the *next*
    command fuses with it (:mod:`repro.opencl.fusion`).  The caller's
    :class:`Event` exists from enqueue time and is stamped with its real
    placement when the pending dispatch finally executes — either inside
    a fused launch or as an ordinary flush.
    """

    __slots__ = ("kernel", "entries", "gsz", "lsz", "reads", "writes", "event")

    def __init__(self, kernel, entries, gsz, lsz, reads, writes, event):
        self.kernel = kernel
        self.entries = entries
        self.gsz = gsz
        self.lsz = lsz
        self.reads = reads
        self.writes = writes
        self.event = event


class CommandQueue:
    """A command queue bound to one device of a context.

    ``out_of_order=True`` enables the hazard-tracking list scheduler
    (see the module docstring); the default reproduces the paper's
    strictly in-order queues byte-for-byte.
    """

    def __init__(
        self,
        context: Context,
        device: Device,
        out_of_order: bool = False,
    ) -> None:
        if not context.has_device(device):
            raise CLInvalidContext(
                f"device {device.name!r} is not part of the context"
            )
        self.id = next(_queue_ids)
        self.context = context
        self.device = device
        self.out_of_order = bool(out_of_order)
        self.events: list[Event] = []
        self.released = False
        # -- schedule state (all timestamps queue-local, origin 0) ----
        #: what an in-order drain of the same commands would take
        self._serial_end = 0.0
        #: end of the latest-finishing scheduled command (the makespan)
        self._sched_max_end = 0.0
        #: per-engine availability (out-of-order mode)
        self._engine_free: dict[str, float] = {}
        #: buffer id -> event that last wrote it
        self._last_writer: dict[int, Event] = {}
        #: buffer id -> events that read it since its last write
        self._last_readers: dict[int, list[Event]] = {}
        #: schedule time all post-barrier/finish commands must respect
        self._fence_ns = 0.0
        #: overlap already reported to the tracer counter
        self._overlap_reported = 0.0
        #: kernel dispatch deferred by the graph-level optimiser
        #: (always None while fusion is disabled)
        self._pending: Optional[_PendingKernel] = None
        # -- composed (end-to-end) schedule state, shared-origin ------
        #: composed-timeline epoch the state below belongs to; when the
        #: timeline resets (Context.reset_ledger between runs) the queue
        #: re-anchors lazily at the new origin
        self._e2e_epoch = context.clock.timeline.epoch
        #: end of the previous command on the composed axis (in-order)
        self._e2e_prev_end = 0.0
        #: per-engine availability on the composed axis (out-of-order)
        self._e2e_engine_free: dict[str, float] = {}
        #: composed-axis fence (barrier/finish ordering point)
        self._e2e_fence = 0.0
        #: end of the latest-finishing command on the composed axis
        self._e2e_max_end = 0.0
        context._queues.append(self)

    # -- schedule -----------------------------------------------------------

    @property
    def makespan_ns(self) -> float:
        """Length of the queue's schedule (max command end, origin 0)."""
        return self._sched_max_end

    @property
    def serial_makespan_ns(self) -> float:
        """What the same command stream takes when drained in order."""
        return self._serial_end

    @property
    def overlap_ns(self) -> float:
        """Schedule time saved vs an in-order drain (0 when in-order)."""
        return max(0.0, self._serial_end - self._sched_max_end)

    @property
    def e2e_makespan_ns(self) -> float:
        """End of this queue's schedule on the composed end-to-end axis
        (0.0 when nothing was placed since the timeline's last epoch)."""
        if self._e2e_epoch != self.context.clock.timeline.epoch:
            return 0.0
        return self._e2e_max_end

    def _e2e_anchor(self, epoch: int) -> None:
        """Re-anchor composed-axis state at a new timeline epoch.

        ``Context.reset_ledger`` restarts the composed timeline at
        origin 0; composed coordinates recorded before the reset are
        stale, so the per-engine availability, fence and makespan drop
        back to the origin.  Queue-local schedule state (serial end,
        makespan, ``overlap_ns``) deliberately survives: it describes
        the queue, not the measured run.
        """
        if self._e2e_epoch != epoch:
            self._e2e_prev_end = 0.0
            self._e2e_engine_free.clear()
            self._e2e_fence = 0.0
            self._e2e_max_end = 0.0
            self._e2e_epoch = epoch

    @staticmethod
    def _e2e_end_of(event: Event, epoch: int) -> float:
        """*event*'s composed end, or 0.0 when from a stale epoch."""
        return event.e2e_end_ns if event._e2e_epoch == epoch else 0.0

    def _schedule(
        self,
        event: Event,
        command: str,
        ns: float,
        reads: Iterable[int],
        writes: Iterable[int],
        wait_for: Optional[Sequence[Event]],
    ) -> None:
        """Place *event* on both schedule timelines and update hazards.

        Queue-local axis — in-order: chained after the previous
        command; out-of-order: placed at max(engine availability,
        dependency ends, fence), where dependencies are the explicit
        *wait_for* events plus the inferred RAW/WAR/WAW hazards on
        *reads*/*writes*.

        Composed axis — the same rules with composed coordinates, plus
        one extra lower bound: the host cursor at enqueue time (a
        command cannot start before the host issued it).
        """
        timeline = self.context.clock.timeline
        epoch = timeline.epoch
        self._e2e_anchor(epoch)
        release = timeline.host_pos_ns
        event._e2e_epoch = epoch

        serial_start = self._serial_end
        self._serial_end = serial_start + ns
        if not self.out_of_order:
            event.sched_start_ns = serial_start
            event.sched_end_ns = serial_start + ns
            self._sched_max_end = self._serial_end
            e2e_start = max(release, self._e2e_prev_end)
            e2e_end = e2e_start + ns
            event.e2e_start_ns = e2e_start
            event.e2e_end_ns = e2e_end
            self._e2e_prev_end = e2e_end
            self._e2e_max_end = max(self._e2e_max_end, e2e_end)
            timeline.place(
                TIMELINE_KIND_OF[event.category], e2e_start, e2e_end
            )
            return

        ready = self._fence_ns
        e2e_ready = max(release, self._e2e_fence)
        if wait_for:
            for dep in wait_for:
                ready = max(ready, dep.sched_end_ns)
                e2e_ready = max(e2e_ready, self._e2e_end_of(dep, epoch))
        for buf_id in reads:
            writer = self._last_writer.get(buf_id)
            if writer is not None:
                ready = max(ready, writer.sched_end_ns)
                e2e_ready = max(e2e_ready, self._e2e_end_of(writer, epoch))
        for buf_id in writes:
            writer = self._last_writer.get(buf_id)
            if writer is not None:
                ready = max(ready, writer.sched_end_ns)
                e2e_ready = max(e2e_ready, self._e2e_end_of(writer, epoch))
            for reader in self._last_readers.get(buf_id, ()):
                ready = max(ready, reader.sched_end_ns)
                e2e_ready = max(e2e_ready, self._e2e_end_of(reader, epoch))
        engine = ENGINE_OF[command]
        start = max(ready, self._engine_free.get(engine, 0.0))
        end = start + ns
        event.sched_start_ns = start
        event.sched_end_ns = end
        self._engine_free[engine] = end
        self._sched_max_end = max(self._sched_max_end, end)
        e2e_start = max(e2e_ready, self._e2e_engine_free.get(engine, 0.0))
        e2e_end = e2e_start + ns
        event.e2e_start_ns = e2e_start
        event.e2e_end_ns = e2e_end
        self._e2e_engine_free[engine] = e2e_end
        self._e2e_max_end = max(self._e2e_max_end, e2e_end)
        timeline.place(TIMELINE_KIND_OF[event.category], e2e_start, e2e_end)

        for buf_id in writes:
            self._last_writer[buf_id] = event
            self._last_readers[buf_id] = []
        for buf_id in reads:
            self._last_readers.setdefault(buf_id, []).append(event)

        tracer = current_tracer()
        if tracer.enabled:
            overlap = self.overlap_ns
            delta = overlap - self._overlap_reported
            if delta > 0.0:
                self._overlap_reported = overlap
                tracer.count("queue.overlap_ns", delta)
            tracer.struct_span(
                command,
                track=f"sched/queue-{self.id}/{engine}",
                ts_ns=start,
                dur_ns=ns,
                category="sched",
                args={
                    "ready_ns": ready,
                    "serial_start_ns": serial_start,
                    "e2e_start_ns": e2e_start,
                },
            )

    def _sync_schedule(self) -> None:
        """Fence the schedule: later commands start after everything
        scheduled so far (out-of-order ``finish``/barrier semantics)."""
        self._fence_ns = max(self._fence_ns, self._sched_max_end)
        self._e2e_fence = max(self._e2e_fence, self._e2e_max_end)
        self._last_writer.clear()
        self._last_readers.clear()

    # -- helpers -----------------------------------------------------------

    def _record(
        self,
        command: str,
        category: str,
        ns: float,
        reads: Iterable[int] = (),
        writes: Iterable[int] = (),
        wait_for: Optional[Sequence[Event]] = None,
        **span_args,
    ) -> Event:
        """Price one command: schedule it, stamp an Event and charge the
        context ledger/clock (the cost totals never depend on mode)."""
        queued = self.context.clock.now_ns
        start = self.device.schedule_ns(queued, ns)
        event = Event(
            command, category, queued, ns, submit_ns=queued, start_ns=start
        )
        self._schedule(event, command, ns, reads, writes, wait_for)
        self.context.charge(
            category,
            ns,
            name=command,
            track=f"device/{self.device.name}",
            ts_ns=start,
            args=dict(
                span_args,
                queued_ns=queued,
                queue_delay_ns=event.queue_delay_ns,
            ),
            placed=True,
        )
        self.events.append(event)
        return event

    def _stamp_and_charge(
        self,
        event: Event,
        command: str,
        category: str,
        ns: float,
        reads: Iterable[int] = (),
        writes: Iterable[int] = (),
        wait_for: Optional[Sequence[Event]] = None,
        **span_args,
    ) -> Event:
        """Like :meth:`_record`, but for a pre-existing (deferred)
        *event*: the command was enqueued earlier and is priced now, so
        QUEUED keeps its original timestamp while SUBMIT is the flush
        instant."""
        submit = self.context.clock.now_ns
        start = self.device.schedule_ns(submit, ns)
        event.submit_ns = submit
        event.start_ns = start
        event.end_ns = start + ns
        self._schedule(event, command, ns, reads, writes, wait_for)
        self.context.charge(
            category,
            ns,
            name=command,
            track=f"device/{self.device.name}",
            ts_ns=start,
            args=dict(
                span_args,
                queued_ns=event.queued_ns,
                queue_delay_ns=event.queue_delay_ns,
            ),
            placed=True,
        )
        self.events.append(event)
        return event

    def _mark_kernel_written(self, entries: Sequence, writes: Iterable[int]) -> None:
        """A kernel stored into these buffers: their device contents no
        longer match any host upload, so the transfer-elimination pass
        must not elide the next write into them."""
        written = set(writes)
        for entry in entries:
            if isinstance(entry, Buffer) and entry.id in written:
                entry._h2d_clean = None

    def _launch(
        self,
        name: str,
        runner,
        entries: Sequence,
        reads: Iterable[int],
        writes: Iterable[int],
        gsz: Sequence[int],
        lsz: Sequence[int],
        wait_for: Optional[Sequence[Event]],
        **span_args,
    ) -> Event:
        """Execute, price and record one kernel launch (shared tail of
        the normal, fused and flush dispatch paths)."""
        ns = dispatch_kernel_ns(runner, self.device.spec, entries, gsz, lsz)
        self._mark_kernel_written(entries, writes)
        with self.context.ledger._lock:
            self.context.ledger.kernel_launches += 1
        return self._record(
            NDRANGE_KERNEL,
            "kernel",
            ns,
            reads=reads,
            writes=writes,
            wait_for=wait_for,
            kernel=name,
            global_size=list(gsz),
            local_size=list(lsz),
            **span_args,
        )

    def _flush_if_pending(self, reason: str) -> None:
        """Dispatch the deferred kernel, if any (no-op otherwise)."""
        if self._pending is not None:
            self._flush_pending(reason)

    def _flush_pending(self, reason: str) -> Event:
        """Dispatch the deferred kernel as an ordinary launch.

        *reason* is the legality rule that rejected fusion or the
        command class that forced the flush; it lands on the tracer as
        ``dispatch.fuse.reject.<reason>`` so demotions are diagnosable.
        The pending slot is cleared *before* executing — the dispatch
        itself observes buffer contents, which would otherwise re-enter
        here through the host-observation hooks.
        """
        pend = self._pending
        assert pend is not None
        self._pending = None
        self.context._fusion_pending -= 1
        fusion.count_reject(reason)
        ns = dispatch_kernel_ns(
            pend.kernel.runner(self.device),
            self.device.spec,
            pend.entries,
            pend.gsz,
            pend.lsz,
        )
        self._mark_kernel_written(pend.entries, pend.writes)
        with self.context.ledger._lock:
            self.context.ledger.kernel_launches += 1
        return self._stamp_and_charge(
            pend.event,
            NDRANGE_KERNEL,
            "kernel",
            ns,
            reads=pend.reads,
            writes=pend.writes,
            kernel=pend.kernel.name,
            flushed=reason,
            global_size=list(pend.gsz),
            local_size=list(pend.lsz),
        )

    def _check_buffer(self, buf: Buffer) -> None:
        buf.check_alive()
        if buf.context is not self.context:
            raise CLInvalidContext(
                f"buffer {buf.id} belongs to a different context"
            )

    def _check_device_writable(self) -> None:
        """New writes and dispatches are refused on a lost device
        (reads of already-resident buffers still drain)."""
        if self.device.lost:
            raise CLDeviceLost(
                f"device {self.device.name!r} was lost; no new work accepted"
            )

    def _fault_gate(self, op: str, key: str, attempt_ns: float) -> None:
        """Consult the installed fault plan before a chargeable command.

        Returns normally when the operation may proceed.  Each injected
        failure charges the aborted attempt (*attempt_ns* in the op's
        own cost category) so faulted runs price deterministically;
        transient faults are retried up to the
        :class:`~repro.opencl.faults.RetryPolicy` bound with simulated
        backoff charged as host time; ``device-lost`` marks the device
        lost; unrecoverable faults raise the matching
        :mod:`repro.errors` subclass carrying the original fault.
        """
        plan = faults.active_plan()
        if plan is None:
            return
        policy = faults.retry_policy()
        category = "kernel" if op == "kernel" else op
        attempt = 1
        while True:
            fault = plan.decide(op, key)
            if fault is None:
                return
            faults.count_injection(fault)
            if attempt_ns > 0.0:
                self.context.charge(
                    category,
                    attempt_ns,
                    name=f"fault.{op}",
                    track=f"device/{self.device.name}",
                    args={"key": key, "kind": fault.kind},
                )
            if fault.kind == faults.DEVICE_LOST:
                self.device.mark_lost()
                raise faults.exception_for(
                    fault, f"device {self.device.name!r}"
                )
            if fault.transient and attempt < policy.max_attempts:
                if policy.backoff_ns > 0.0:
                    self.context.charge(
                        "host",
                        policy.backoff_ns * attempt,
                        name="fault.backoff",
                    )
                faults.count_retry()
                attempt += 1
                continue
            raise faults.exception_for(fault)

    # -- data movement ------------------------------------------------------

    def enqueue_write_buffer(
        self,
        buf: Buffer,
        host_data: Sequence,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        """Copy *host_data* into the device buffer (host -> device).

        With the graph-level optimiser on
        (``dispatch.configure(fusion=True)``), a write whose target
        buffer already holds exactly *host_data* from an earlier clean
        transfer on this device — tracked by the buffer's residency
        marker and confirmed by content comparison — is elided: no DMA
        span is priced, no bytes are counted, and a zero-duration event
        records the elision (``dispatch.xfer_elim`` counters).
        """
        self._check_buffer(buf)
        if len(host_data) != buf.n_elements:
            raise CLInvalidValue(
                f"write of {len(host_data)} elements into buffer "
                f"of {buf.n_elements}"
            )
        self._flush_if_pending("sync")
        ns = self.device.spec.transfer_ns(buf.nbytes, to_device=True)
        self._check_device_writable()
        if (
            fusion.enabled()
            and buf._h2d_clean == (self.context.residency_epoch, self.device.id)
            and buf.contents_equal(host_data)
        ):
            fusion.count_xfer_elim(buf.nbytes)
            return self._record(
                WRITE_BUFFER, "h2d", 0.0,
                writes=(buf.id,), wait_for=wait_for, nbytes=buf.nbytes,
                elided=True,
            )
        self._fault_gate("h2d", f"buf{buf.ordinal}", ns)
        buf.data[:] = host_data
        buf._h2d_clean = (self.context.residency_epoch, self.device.id)
        with self.context.ledger._lock:
            self.context.ledger.bytes_to_device += buf.nbytes
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("bytes.to_device", buf.nbytes)
        return self._record(
            WRITE_BUFFER, "h2d", ns,
            writes=(buf.id,), wait_for=wait_for, nbytes=buf.nbytes,
        )

    def enqueue_read_buffer(
        self,
        buf: Buffer,
        host_out: list,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        """Copy the device buffer back into *host_out* (device -> host).

        The read certifies host and device copies equal, so it arms the
        transfer-elimination marker: re-uploading the data unmodified
        collapses the d2h -> h2d round trip when fusion is enabled.
        """
        self._check_buffer(buf)
        if len(host_out) != buf.n_elements:
            raise CLInvalidValue(
                f"read of buffer of {buf.n_elements} elements into host "
                f"array of {len(host_out)}"
            )
        self._flush_if_pending("host-read")
        ns = self.device.spec.transfer_ns(buf.nbytes, to_device=False)
        self._fault_gate("d2h", f"buf{buf.ordinal}", ns)
        host_out[:] = buf.data
        buf._h2d_clean = (self.context.residency_epoch, self.device.id)
        with self.context.ledger._lock:
            self.context.ledger.bytes_from_device += buf.nbytes
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("bytes.from_device", buf.nbytes)
        return self._record(
            READ_BUFFER, "d2h", ns,
            reads=(buf.id,), wait_for=wait_for, nbytes=buf.nbytes,
        )

    def enqueue_copy_buffer(
        self,
        src: Buffer,
        dst: Buffer,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        """Device-to-device copy inside the context (no host link cost;
        charged at kernel-engine speed)."""
        self._check_buffer(src)
        self._check_buffer(dst)
        self._flush_if_pending("sync")
        self._check_device_writable()
        if src.n_elements != dst.n_elements or src.dtype != dst.dtype:
            raise CLInvalidValue("copy between mismatched buffers")
        dst.data[:] = src.data
        dst._h2d_clean = None
        ns = src.n_elements / (self.device.spec.lanes * self.device.spec.ops_per_ns)
        return self._record(
            COPY_BUFFER, "kernel", ns,
            reads=(src.id,), writes=(dst.id,), wait_for=wait_for,
        )

    # -- kernel dispatch ---------------------------------------------------

    def check_nd_range(
        self,
        global_size: Sequence[int],
        local_size: Optional[Sequence[int]] = None,
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Validate an NDRange against this queue's device; returns the
        (global, local) sizes with the device's choice filled in when
        the caller passed no local size."""
        gsz = tuple(int(s) for s in global_size)
        if not 1 <= len(gsz) <= 3 or any(s <= 0 for s in gsz):
            raise CLInvalidValue(f"bad global size {gsz}")
        if local_size is None:
            lsz = self.device.choose_local_size(gsz)
        else:
            lsz = tuple(int(s) for s in local_size)
        if len(lsz) != len(gsz):
            raise CLInvalidWorkGroupSize(
                f"local size {lsz} rank != global size {gsz} rank"
            )
        if any(l <= 0 or g % l != 0 for g, l in zip(gsz, lsz)):
            raise CLInvalidWorkGroupSize(
                f"local size {lsz} does not divide global size {gsz}"
            )
        wg = 1
        for l in lsz:
            wg *= l
        if wg > self.device.spec.max_work_group_size:
            raise CLInvalidWorkGroupSize(
                f"work-group of {wg} exceeds device limit "
                f"{self.device.spec.max_work_group_size}"
            )
        return gsz, lsz

    def enqueue_nd_range_kernel(
        self,
        kernel,
        global_size: Sequence[int],
        local_size: Optional[Sequence[int]] = None,
        wait_for: Optional[Sequence[Event]] = None,
    ) -> Event:
        """Launch *kernel* over the NDRange and price the dispatch.

        With the graph-level optimiser enabled
        (``dispatch.configure(fusion=True)``) the dispatch may be held
        pending and later executed fused with the next kernel on this
        queue — see :mod:`repro.opencl.fusion` and :meth:`_flush_pending`.
        With fusion off (the default) the path below is untouched, so
        every priced figure stays byte-identical.
        """
        gsz, lsz = self.check_nd_range(global_size, local_size)
        self._check_device_writable()
        if fusion.enabled():
            return self._fusion_dispatch(kernel, gsz, lsz, wait_for)
        self._flush_if_pending("disabled")
        self._fault_gate(
            "kernel",
            f"{kernel.name}@{self.device.name}",
            self.device.spec.kernel_launch_ns,
        )
        entries = kernel.bound_entries(self.context)
        reads, writes = kernel.buffer_access(entries)
        return self._launch(
            kernel.name,
            kernel.runner(self.device),
            entries,
            reads,
            writes,
            gsz,
            lsz,
            wait_for,
        )

    def _fusion_dispatch(
        self,
        kernel,
        gsz: tuple[int, ...],
        lsz: tuple[int, ...],
        wait_for: Optional[Sequence[Event]],
    ) -> Event:
        """Kernel dispatch under the graph-level optimiser.

        An incoming kernel first gets its chance to fuse with the
        queue's pending dispatch; on success the pair executes as one
        composed launch (both events stamped with the fused placement),
        on rejection the pending kernel flushes and the incoming one
        takes its place in the pending slot.  Dispatches carrying an
        explicit wait list execute immediately — deferring them would
        complicate the event-dependency bookkeeping for no measured
        gain on the paper's pipelines.
        """
        try:
            self._fault_gate(
                "kernel",
                f"{kernel.name}@{self.device.name}",
                self.device.spec.kernel_launch_ns,
            )
        except CLDeviceLost:
            # The pending producer was accepted before the loss; execute
            # it so buffer contents stay consistent for the failover
            # path (reads drain on lost devices), then surface the loss.
            self._flush_if_pending("device-lost")
            raise
        except CLError:
            # A non-loss injected failure aborts only *this* dispatch.
            # The pending producer was accepted (and fault-gated) at its
            # own enqueue: flush it as an ordinary launch so its caller's
            # Event is stamped and priced exactly once — a caller that
            # handles the fault and stops enqueuing must not strand it.
            self._flush_if_pending("fault")
            raise
        entries = kernel.bound_entries(self.context)
        reads, writes = kernel.buffer_access(entries)
        if wait_for:
            self._flush_if_pending("sync")
            return self._launch(
                kernel.name,
                kernel.runner(self.device),
                entries,
                reads,
                writes,
                gsz,
                lsz,
                wait_for,
            )
        pend = self._pending
        if pend is not None:
            plan = fusion.try_fuse(
                self.context, self.device, pend, kernel, entries, gsz, lsz
            )
            if isinstance(plan, fusion.FusedPlan):
                self._pending = None
                self.context._fusion_pending -= 1
                fusion.count_fused()
                event = self._launch(
                    plan.name,
                    plan.runner,
                    plan.entries,
                    plan.reads,
                    plan.writes,
                    gsz,
                    lsz,
                    None,
                    fused=f"{pend.kernel.name}+{kernel.name}",
                )
                # The producer's event shares the fused placement: its
                # work happened inside the composed launch.
                produced = pend.event
                for attr in (
                    "submit_ns",
                    "start_ns",
                    "end_ns",
                    "sched_start_ns",
                    "sched_end_ns",
                    "e2e_start_ns",
                    "e2e_end_ns",
                    "_e2e_epoch",
                ):
                    setattr(produced, attr, getattr(event, attr))
                self.events.insert(len(self.events) - 1, produced)
                return event
            self._flush_pending(plan)
        event = Event(
            NDRANGE_KERNEL, "kernel", self.context.clock.now_ns, 0.0
        )
        # Residency markers die at enqueue time, exactly as in the
        # unfused world where enqueue executes immediately — a sibling
        # queue of this context must never elide an upload against a
        # buffer this deferred kernel is about to write.
        self._mark_kernel_written(entries, writes)
        self._pending = _PendingKernel(
            kernel, entries, gsz, lsz, reads, writes, event
        )
        self.context._fusion_pending += 1
        return event

    def enqueue_priced_kernel(
        self,
        name: str,
        ns: float,
        reads: Iterable[int] = (),
        writes: Iterable[int] = (),
        wait_for: Optional[Sequence[Event]] = None,
        **span_args,
    ) -> Event:
        """Record an externally executed, pre-priced kernel share.

        The multi-device dispatcher executes an NDRange once, prices
        each device's slice separately, and lands each share here so the
        per-device ledgers, event timelines and hazard tables all see
        the split parts.  Fault decisions for split shares are taken by
        the dispatcher itself (before pricing), so this path only
        refuses lost devices.
        """
        self._flush_if_pending("sync")
        self._check_device_writable()
        with self.context.ledger._lock:
            self.context.ledger.kernel_launches += 1
        return self._record(
            NDRANGE_KERNEL, "kernel", ns,
            reads=reads, writes=writes, wait_for=wait_for,
            kernel=name, **span_args,
        )

    def enqueue_priced_transfer(
        self,
        category: str,
        buf: Buffer,
        nbytes: int,
        wait_for: Optional[Sequence[Event]] = None,
        **span_args,
    ) -> Event:
        """Charge a transfer of *nbytes* of *buf* without moving data.

        Models the broadcast/gather traffic of a multi-device split:
        secondary devices pay the host-link cost of receiving their
        inputs and returning their output share, while the data itself
        already lives in the context's (single-copy) buffer.
        """
        self._check_buffer(buf)
        self._flush_if_pending("sync")
        to_device = category == "h2d"
        if to_device:
            self._check_device_writable()
        ns = self.device.spec.transfer_ns(nbytes, to_device=to_device)
        self._fault_gate(category, f"buf{buf.ordinal}", ns)
        with self.context.ledger._lock:
            if to_device:
                self.context.ledger.bytes_to_device += nbytes
            else:
                self.context.ledger.bytes_from_device += nbytes
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count(
                "bytes.to_device" if to_device else "bytes.from_device",
                nbytes,
            )
        command = WRITE_BUFFER if to_device else READ_BUFFER
        access = {"writes": (buf.id,)} if to_device else {"reads": (buf.id,)}
        return self._record(
            command, category, ns,
            wait_for=wait_for, nbytes=nbytes, **access, **span_args,
        )

    # -- synchronisation ----------------------------------------------------

    def enqueue_marker(
        self, wait_for: Optional[Sequence[Event]] = None
    ) -> Event:
        """A zero-duration event completing when *wait_for* (or, with no
        list, everything enqueued so far) has completed.  Does not hold
        up later commands."""
        return self._sync_event(MARKER, wait_for, fence=False)

    def enqueue_barrier(
        self, wait_for: Optional[Sequence[Event]] = None
    ) -> Event:
        """Like a marker, but later commands may not start before it —
        the OpenCL barrier ordering point (a no-op for in-order queues,
        which are one long chain already)."""
        return self._sync_event(BARRIER, wait_for, fence=True)

    def _sync_event(
        self,
        command: str,
        wait_for: Optional[Sequence[Event]],
        fence: bool,
    ) -> Event:
        self._flush_if_pending("sync")
        timeline = self.context.clock.timeline
        epoch = timeline.epoch
        self._e2e_anchor(epoch)
        queued = self.context.clock.now_ns
        event = Event(command, "kernel", queued, 0.0)
        event._e2e_epoch = epoch
        if wait_for:
            at = max((dep.sched_end_ns for dep in wait_for), default=0.0)
            e2e_at = max(
                (self._e2e_end_of(dep, epoch) for dep in wait_for),
                default=0.0,
            )
        else:
            at = self._sched_max_end
            e2e_at = self._e2e_max_end
        at = max(at, self._fence_ns)
        e2e_at = max(e2e_at, self._e2e_fence, timeline.host_pos_ns)
        event.sched_start_ns = at
        event.sched_end_ns = at
        event.e2e_start_ns = e2e_at
        event.e2e_end_ns = e2e_at
        if fence and self.out_of_order:
            self._fence_ns = max(self._fence_ns, at)
            self._e2e_fence = max(self._e2e_fence, e2e_at)
            if wait_for is None:
                self._sync_schedule()
        self.events.append(event)
        return event

    # -- lifecycle -----------------------------------------------------------

    def finish(self) -> None:
        """Block until queued commands complete (immediate in simulation).

        For an out-of-order queue this is also a schedule ordering
        point: commands enqueued afterwards start no earlier than
        everything scheduled so far, exactly like ``clFinish``.

        On the composed end-to-end timeline (both modes) it is the
        blocking host call it models: the host cursor advances to this
        queue's composed makespan, so commands enqueued afterwards —
        on *any* queue of the clock — start no earlier.
        """
        self._flush_if_pending("sync")
        timeline = self.context.clock.timeline
        if self._e2e_epoch == timeline.epoch:
            timeline.host_wait(self._e2e_max_end)
        if self.out_of_order:
            self._sync_schedule()

    def flush(self) -> None:
        """Submit queued commands (immediate in simulation; dispatches
        any kernel the graph-level optimiser held pending)."""
        self._flush_if_pending("sync")

    def release(self) -> None:
        """Detach the queue from its context (commands stay priced)."""
        self._flush_if_pending("sync")
        self.released = True
        try:
            self.context._queues.remove(self)
        except ValueError:  # pragma: no cover - defensive
            pass
