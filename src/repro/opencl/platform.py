"""Platforms and devices of the simulated OpenCL installation.

Mirrors the OpenCL discovery model (Section 2.1 of the paper): the host
queries the runtime for vendor *platforms*, each exposing *devices*.
The default installation registers one platform carrying a CPU device
and a GPU device whose performance parameters approximate the paper's
testbed (i5-3550 + R9 290x).  Tests and benchmarks may install scaled
platforms via :func:`set_platforms`.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Optional, Sequence

from ..errors import CLBuildProgramFailure, CLInvalidDevice, CLInvalidValue
from .. import kcache, kir
from .costmodel import CPU, GPU, DeviceSpec, cpu_spec, gpu_spec

_device_ids = itertools.count(1)


class Device:
    """One simulated accelerator."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.id = next(_device_ids)
        #: End of the last command scheduled on this device (the device
        #: timeline).  Commands from any queue on the device start no
        #: earlier than this, so an in-order queue behind a busy device
        #: shows queueing delay (START > SUBMIT) in its events.
        self.busy_until_ns = 0.0
        #: True after an injected ``device-lost`` fault: the device
        #: accepts no new writes or dispatches (reads of resident
        #: buffers still drain — see docs/RELIABILITY.md).  Permanent
        #: for the life of the Device object; tests reinstall platforms.
        self.lost = False
        self._timeline_lock = threading.Lock()

    def mark_lost(self) -> None:
        """Drop the device off the simulated bus (fault injection)."""
        self.lost = True

    @property
    def available(self) -> bool:
        """Whether the device still accepts new work."""
        return not self.lost

    def schedule_ns(self, submit_ns: float, duration_ns: float) -> float:
        """Reserve the device for *duration_ns* starting no earlier than
        *submit_ns*; returns the command's START timestamp."""
        with self._timeline_lock:
            start = max(submit_ns, self.busy_until_ns)
            self.busy_until_ns = start + duration_ns
            return start

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def device_type(self) -> str:
        return self.spec.device_type

    def __repr__(self) -> str:
        return f"<Device {self.id} {self.spec.device_type} {self.name!r}>"

    # -- kernel compilation ---------------------------------------------

    def compile_source(self, source: str) -> kir.CompiledModule:
        """Runtime-compile kernel-C *source* for this device.

        Compilation is deduplicated through the content-addressed
        :mod:`repro.kcache` (keyed on source x device-spec fingerprint),
        so identical kernels targeting identically-parameterised devices
        compile once per process regardless of how many Program objects,
        contexts or platform instances are involved.
        """
        try:
            return kcache.get_or_build(source, self.spec)
        except CLBuildProgramFailure:
            raise
        except Exception as exc:  # surface as a CL build failure
            raise CLBuildProgramFailure(str(exc), build_log=str(exc)) from exc

    # -- work-group sizing ------------------------------------------------

    def choose_local_size(self, global_size: Sequence[int]) -> tuple[int, ...]:
        """Pick a reasonable local size when the caller passes none.

        Chooses the largest power-of-two divisor per dimension whose
        product stays within the device's work-group limit — the same
        heuristic OpenCL implementations apply for a NULL local size.
        """
        budget = self.spec.max_work_group_size
        out: list[int] = []
        for size in global_size:
            pick = 1
            while (
                pick * 2 <= budget
                and size % (pick * 2) == 0
                and pick * 2 <= size
            ):
                pick *= 2
            out.append(pick)
            budget //= pick
            if budget < 1:
                budget = 1
        return tuple(out)


class Platform:
    """A vendor driver exposing one or more devices."""

    def __init__(self, name: str, vendor: str, devices: Sequence[Device]) -> None:
        self.name = name
        self.vendor = vendor
        self.devices = list(devices)

    def get_devices(self, device_type: Optional[str] = None) -> list[Device]:
        if device_type is None or device_type == "ALL":
            return list(self.devices)
        found = [d for d in self.devices if d.device_type == device_type]
        if not found:
            raise CLInvalidDevice(f"no {device_type} device on {self.name!r}")
        return found

    def __repr__(self) -> str:
        return f"<Platform {self.name!r} devices={len(self.devices)}>"


def _default_platforms() -> list[Platform]:
    return [
        Platform(
            "Repro OpenCL",
            "Repro Computing",
            [
                Device(cpu_spec(name="Repro Core i5-3550 Sim")),
                Device(gpu_spec(name="Repro Radeon R9 290x Sim")),
            ],
        )
    ]


_platforms: list[Platform] | None = None
_platforms_lock = threading.Lock()


def get_platforms() -> list[Platform]:
    """Discover the installed platforms (lazily builds the default)."""
    global _platforms
    with _platforms_lock:
        if _platforms is None:
            _platforms = _default_platforms()
        return list(_platforms)


def set_platforms(platforms: Sequence[Platform]) -> None:
    """Replace the installed platform list (benchmarks install scaled
    devices; tests install fakes)."""
    global _platforms
    if not platforms:
        raise CLInvalidValue("platform list cannot be empty")
    with _platforms_lock:
        _platforms = list(platforms)


def reset_platforms() -> None:
    """Restore the default installation."""
    global _platforms
    with _platforms_lock:
        _platforms = None


def scaled_platform(scale: float, name: str = "Repro OpenCL (scaled)") -> Platform:
    """A platform whose devices are shrunk by *scale* for small-size
    benchmark runs (see DESIGN.md, cost-model section)."""
    return Platform(
        name,
        "Repro Computing",
        [
            Device(cpu_spec(scale, name=f"CPU sim x{scale}")),
            Device(gpu_spec(scale, name=f"GPU sim x{scale}")),
        ],
    )


def find_device(
    device_type: str, platforms: Optional[Sequence[Platform]] = None
) -> Device:
    """First device of *device_type* across *platforms* (default: installed)."""
    for platform in platforms or get_platforms():
        for device in platform.devices:
            if device.device_type == device_type:
                return device
    raise CLInvalidDevice(f"no {device_type} device installed")
