"""The flat, C-style OpenCL API.

This is the verbose interface the paper's *C-OpenCL* baseline programs
against: explicit discovery, context construction, queue creation,
buffer management, runtime compilation, argument binding and dispatch.
The object layer (:mod:`repro.opencl.context` etc.) does the work; this
module adds the call-by-call ceremony — and charges each call's host
overhead — so the API-style applications in :mod:`repro.apps` carry the
same boilerplate burden the paper measures in Table 1.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import CLInvalidValue
from .context import Context
from .memory import Buffer, COPY_HOST_PTR, READ_ONLY, READ_WRITE, WRITE_ONLY
from .platform import Device, Platform, get_platforms
from .program import Kernel, Program
from .queue import CommandQueue, Event

# Device-type constants, CL style.
CL_DEVICE_TYPE_CPU = "CPU"
CL_DEVICE_TYPE_GPU = "GPU"
CL_DEVICE_TYPE_ALL = "ALL"

CL_MEM_READ_WRITE = READ_WRITE
CL_MEM_READ_ONLY = READ_ONLY
CL_MEM_WRITE_ONLY = WRITE_ONLY
CL_MEM_COPY_HOST_PTR = COPY_HOST_PTR


def clGetPlatformIDs() -> list[Platform]:
    """Query the installed vendor platforms."""
    return get_platforms()


def clGetDeviceIDs(
    platform: Platform, device_type: str = CL_DEVICE_TYPE_ALL
) -> list[Device]:
    """Query *platform* for devices of *device_type*."""
    return platform.get_devices(device_type)


def clCreateContext(devices: Sequence[Device]) -> Context:
    """Create a context holding *devices*."""
    return Context(devices)


def clCreateCommandQueue(context: Context, device: Device) -> CommandQueue:
    """Create an in-order, profiling command queue on *device*."""
    context.charge_api_call(device)
    return CommandQueue(context, device)


def clCreateBuffer(
    context: Context,
    flags: Sequence[str],
    n_elements: int,
    dtype: str = "float",
    host_ptr: Optional[Sequence] = None,
) -> Buffer:
    """Allocate a device buffer of *n_elements* elements."""
    context.charge_api_call()
    return Buffer(context, n_elements, dtype, flags, host_data=host_ptr)


def clCreateProgramWithSource(context: Context, source: str) -> Program:
    """Create (or re-reference) the context's program for *source*.

    Identical source within one context returns the same retained
    Program object, so its build state — and the compile cost already
    paid — is shared; pair each call with :func:`clReleaseProgram`.
    """
    context.charge_api_call()
    with context._registry_lock:
        existing = context._program_registry.get(source)
        if existing is not None:
            existing.retain()
            return existing
        program = Program(context, source)
        context._program_registry[source] = program
        return program


def clBuildProgram(
    program: Program, devices: Optional[list[Device]] = None
) -> None:
    program.context.charge_api_call()
    program.build(devices)


def clCreateKernel(program: Program, name: str) -> Kernel:
    program.context.charge_api_call()
    return program.create_kernel(name)


def clSetKernelArg(kernel: Kernel, index: int, value) -> None:
    kernel.program.context.charge_api_call()
    kernel.set_arg(index, value)


def clEnqueueWriteBuffer(
    queue: CommandQueue,
    buffer: Buffer,
    blocking: bool,
    host_data: Sequence,
) -> Event:
    queue.context.charge_api_call(queue.device)
    return queue.enqueue_write_buffer(buffer, host_data)


def clEnqueueReadBuffer(
    queue: CommandQueue, buffer: Buffer, blocking: bool, host_out: list
) -> Event:
    queue.context.charge_api_call(queue.device)
    return queue.enqueue_read_buffer(buffer, host_out)


def clEnqueueNDRangeKernel(
    queue: CommandQueue,
    kernel: Kernel,
    work_dim: int,
    global_size: Sequence[int],
    local_size: Optional[Sequence[int]] = None,
) -> Event:
    if work_dim != len(global_size):
        raise CLInvalidValue(
            f"work_dim {work_dim} != len(global_size) {len(global_size)}"
        )
    queue.context.charge_api_call(queue.device)
    return queue.enqueue_nd_range_kernel(kernel, global_size, local_size)


def clFinish(queue: CommandQueue) -> None:
    queue.context.charge_api_call(queue.device)
    queue.finish()


def clGetEventProfilingInfo(event: Event, name: str) -> float:
    return event.profiling_info(name)


def clReleaseMemObject(buffer: Buffer) -> None:
    buffer.context.charge_api_call()
    buffer.release()


def clReleaseKernel(kernel: Kernel) -> None:
    kernel.program.context.charge_api_call()
    kernel.release()


def clReleaseProgram(program: Program) -> None:
    program.context.charge_api_call()
    program.release()


def clReleaseCommandQueue(queue: CommandQueue) -> None:
    queue.context.charge_api_call(queue.device)
    queue.release()


def clReleaseContext(context: Context) -> None:
    context.release()
