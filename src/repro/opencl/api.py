"""The flat, C-style OpenCL API.

This is the verbose interface the paper's *C-OpenCL* baseline programs
against: explicit discovery, context construction, queue creation,
buffer management, runtime compilation, argument binding and dispatch.
The object layer (:mod:`repro.opencl.context` etc.) does the work; this
module adds the call-by-call ceremony — and charges each call's host
overhead — so the API-style applications in :mod:`repro.apps` carry the
same boilerplate burden the paper measures in Table 1.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import CLInvalidValue
from .context import Context
from .memory import Buffer, COPY_HOST_PTR, READ_ONLY, READ_WRITE, WRITE_ONLY
from .platform import Device, Platform, get_platforms
from .program import Kernel, Program
from .queue import (
    CL_QUEUE_OUT_OF_ORDER_EXEC_MODE,
    CommandQueue,
    Event,
)

# Device-type constants, CL style.
CL_DEVICE_TYPE_CPU = "CPU"
CL_DEVICE_TYPE_GPU = "GPU"
CL_DEVICE_TYPE_ALL = "ALL"

CL_MEM_READ_WRITE = READ_WRITE
CL_MEM_READ_ONLY = READ_ONLY
CL_MEM_WRITE_ONLY = WRITE_ONLY
CL_MEM_COPY_HOST_PTR = COPY_HOST_PTR


def clGetPlatformIDs() -> list[Platform]:
    """Query the installed vendor platforms."""
    return get_platforms()


def clGetDeviceIDs(
    platform: Platform, device_type: str = CL_DEVICE_TYPE_ALL
) -> list[Device]:
    """Query *platform* for devices of *device_type*."""
    return platform.get_devices(device_type)


def clCreateContext(devices: Sequence[Device]) -> Context:
    """Create a context holding *devices*."""
    return Context(devices)


def clCreateCommandQueue(
    context: Context, device: Device, properties: Sequence[str] = ()
) -> CommandQueue:
    """Create a profiling command queue on *device*.

    In-order by default; pass ``CL_QUEUE_OUT_OF_ORDER_EXEC_MODE`` in
    *properties* for the hazard-tracking out-of-order scheduler.
    """
    context.charge_api_call(device)
    return CommandQueue(
        context,
        device,
        out_of_order=CL_QUEUE_OUT_OF_ORDER_EXEC_MODE in properties,
    )


def clCreateBuffer(
    context: Context,
    flags: Sequence[str],
    n_elements: int,
    dtype: str = "float",
    host_ptr: Optional[Sequence] = None,
) -> Buffer:
    """Allocate a device buffer of *n_elements* elements."""
    context.charge_api_call()
    return Buffer(context, n_elements, dtype, flags, host_data=host_ptr)


def clCreateProgramWithSource(context: Context, source: str) -> Program:
    """Create (or re-reference) the context's program for *source*.

    Identical source within one context returns the same retained
    Program object, so its build state — and the compile cost already
    paid — is shared; pair each call with :func:`clReleaseProgram`.
    """
    context.charge_api_call()
    with context._registry_lock:
        existing = context._program_registry.get(source)
        if existing is not None:
            existing.retain()
            return existing
        program = Program(context, source)
        context._program_registry[source] = program
        return program


def clBuildProgram(
    program: Program, devices: Optional[list[Device]] = None
) -> None:
    """Compile *program* for *devices* (default: all context devices)."""
    program.context.charge_api_call()
    program.build(devices)


def clCreateKernel(program: Program, name: str) -> Kernel:
    """Mine the built *program* for kernel *name*."""
    program.context.charge_api_call()
    return program.create_kernel(name)


def clSetKernelArg(kernel: Kernel, index: int, value) -> None:
    """Bind argument *index* (a Buffer for array params, scalar else)."""
    kernel.program.context.charge_api_call()
    kernel.set_arg(index, value)


def clEnqueueWriteBuffer(
    queue: CommandQueue,
    buffer: Buffer,
    blocking: bool,
    host_data: Sequence,
) -> Event:
    """Copy *host_data* into the device buffer (host -> device)."""
    queue.context.charge_api_call(queue.device)
    return queue.enqueue_write_buffer(buffer, host_data)


def clEnqueueReadBuffer(
    queue: CommandQueue, buffer: Buffer, blocking: bool, host_out: list
) -> Event:
    """Copy the device buffer back into *host_out* (device -> host)."""
    queue.context.charge_api_call(queue.device)
    return queue.enqueue_read_buffer(buffer, host_out)


def clEnqueueNDRangeKernel(
    queue: CommandQueue,
    kernel: Kernel,
    work_dim: int,
    global_size: Sequence[int],
    local_size: Optional[Sequence[int]] = None,
) -> Event:
    """Launch *kernel* over the NDRange on *queue*'s device."""
    if work_dim != len(global_size):
        raise CLInvalidValue(
            f"work_dim {work_dim} != len(global_size) {len(global_size)}"
        )
    queue.context.charge_api_call(queue.device)
    return queue.enqueue_nd_range_kernel(kernel, global_size, local_size)


def clEnqueueMarkerWithWaitList(
    queue: CommandQueue, wait_for: Optional[Sequence[Event]] = None
) -> Event:
    """A zero-cost event completing when the waited-on commands have."""
    queue.context.charge_api_call(queue.device)
    return queue.enqueue_marker(wait_for)


def clEnqueueBarrierWithWaitList(
    queue: CommandQueue, wait_for: Optional[Sequence[Event]] = None
) -> Event:
    """An ordering point: later commands start after it completes."""
    queue.context.charge_api_call(queue.device)
    return queue.enqueue_barrier(wait_for)


def clFinish(queue: CommandQueue) -> None:
    """Block until the queue drains (a schedule fence when out-of-order)."""
    queue.context.charge_api_call(queue.device)
    queue.finish()


def clGetEventProfilingInfo(event: Event, name: str) -> float:
    """CL_PROFILING_COMMAND_{QUEUED,SUBMIT,START,END} lookup."""
    return event.profiling_info(name)


def clReleaseMemObject(buffer: Buffer) -> None:
    """Release *buffer*; later use raises CLMemObjectReleased."""
    buffer.context.charge_api_call()
    buffer.release()


def clReleaseKernel(kernel: Kernel) -> None:
    """Drop the kernel's argument bindings."""
    kernel.program.context.charge_api_call()
    kernel.release()


def clReleaseProgram(program: Program) -> None:
    """Drop one program reference (the last frees its build state)."""
    program.context.charge_api_call()
    program.release()


def clReleaseCommandQueue(queue: CommandQueue) -> None:
    """Detach *queue* from its context (commands stay priced)."""
    queue.context.charge_api_call(queue.device)
    queue.release()


def clReleaseContext(context: Context) -> None:
    """Release the context and any buffers still alive in it."""
    context.release()
