"""Deterministic performance model for the simulated OpenCL devices.

The paper reports wall-clock times on an AMD R9 290x GPU and an Intel
i5-3550 CPU.  This environment has neither, so every reported time in
the reproduction comes from this model instead: a deterministic pricing
of the *actually executed* work.  The model charges:

* **transfers** — latency + bytes/bandwidth, asymmetric for host-to-
  device vs device-to-host (PCIe-like for the GPU device);
* **kernels** — per-work-item dynamic operation counts (measured by the
  execution engine) grouped into SIMD "warps" (a warp's cost is the max
  of its lanes — divergence is paid for), warps summed per work-group,
  and work-groups scheduled in order onto compute units; kernel time is
  the makespan plus a fixed launch overhead;
* **host code** — a per-API-call charge for the C-style baseline, and a
  per-bytecode charge for the Ensemble VM (the paper's interpreter
  overhead).

Because every figure is priced from executed operations, the reported
numbers are exactly reproducible on any machine.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

CPU = "CPU"
GPU = "GPU"
ACCELERATOR = "ACCELERATOR"

#: Simulated byte widths of buffer element types.
ELEMENT_BYTES = {"float": 4, "int": 4, "bool": 1}


@dataclass(frozen=True)
class DeviceSpec:
    """Static performance parameters of one simulated device."""

    name: str
    device_type: str
    compute_units: int
    simd_width: int
    #: per-lane primitive-operation throughput, operations per nanosecond
    ops_per_ns: float
    #: host->device bandwidth, bytes per nanosecond
    h2d_bytes_per_ns: float
    #: device->host bandwidth, bytes per nanosecond
    d2h_bytes_per_ns: float
    #: fixed per-transfer latency
    transfer_latency_ns: float
    #: fixed per-dispatch kernel launch cost
    kernel_launch_ns: float
    #: cost charged per host API call
    api_call_ns: float
    #: one-off runtime program build cost
    compile_ns: float
    max_work_group_size: int = 256

    @property
    def lanes(self) -> int:
        return self.compute_units * self.simd_width

    def transfer_ns(self, nbytes: int, to_device: bool) -> float:
        """Simulated duration of moving *nbytes* across the host link."""
        bw = self.h2d_bytes_per_ns if to_device else self.d2h_bytes_per_ns
        return self.transfer_latency_ns + nbytes / bw

    def kernel_ns(
        self,
        item_ops: Sequence[int],
        global_size: Sequence[int],
        local_size: Sequence[int],
    ) -> float:
        """Price one NDRange dispatch from measured per-item op counts.

        ``item_ops`` is in linear order (dim0 fastest), as produced by
        the execution engine.
        """
        group_warps = group_warp_costs(
            item_ops, global_size, local_size, self.simd_width
        )
        return self.kernel_ns_from_group_warps(group_warps)

    def kernel_ns_from_group_warps(
        self, group_warps: Sequence[Sequence[int]]
    ) -> float:
        """Price a dispatch from per-group lists of warp op maxima.

        The divergence rule only ever consumes warp-level maxima, so
        runners that reduce lanes to warp maxima on the fly (the batched
        execution fast path) feed this directly and produce bit-identical
        times to :meth:`kernel_ns` over the full per-item list.
        """
        group_ns = [
            sum(w for w in warps) / self.ops_per_ns for warps in group_warps
        ]
        makespan = _schedule(group_ns, self.compute_units)
        return self.kernel_launch_ns + makespan


def group_warp_costs(
    item_ops: Sequence[int],
    global_size: Sequence[int],
    local_size: Sequence[int],
    simd: int,
) -> list[list[int]]:
    """Partition per-item op counts into per-group lists of warp costs.

    A warp is ``simd`` consecutive work-items of the same group (taken
    in linear intra-group order); its cost is the maximum of its lanes,
    modelling lock-step divergence.  Public because the multi-device
    dispatcher folds each device's NDRange slice separately (with that
    device's SIMD width) — slicing at work-group boundaries keeps the
    per-group folds bit-identical to a whole-range fold.
    """
    g = list(global_size) + [1] * (3 - len(global_size))
    l = list(local_size) + [1] * (3 - len(local_size))
    ngrp = [gi // li for gi, li in zip(g, l)]

    # group linear index -> list of item ops (in arrival order)
    lanes: list[list[int]] = [[] for _ in range(ngrp[0] * ngrp[1] * ngrp[2])]
    idx = 0
    for z in range(g[2]):
        gz = z // l[2]
        for y in range(g[1]):
            gy = y // l[1]
            row_base = (gz * ngrp[1] + gy) * ngrp[0]
            for x in range(g[0]):
                lanes[row_base + x // l[0]].append(item_ops[idx])
                idx += 1

    out: list[list[int]] = []
    for ops in lanes:
        warps = [
            max(ops[i : i + simd]) for i in range(0, len(ops), simd)
        ]
        out.append(warps)
    return out


#: Backwards-compatible alias (pre-multi-device name).
_group_warp_costs = group_warp_costs


def _schedule(group_ns: Sequence[float], compute_units: int) -> float:
    """In-order greedy assignment of groups to CUs; returns the makespan."""
    if not group_ns:
        return 0.0
    if compute_units <= 1:
        return float(sum(group_ns))
    heap = [0.0] * min(compute_units, len(group_ns))
    heapq.heapify(heap)
    for cost in group_ns:
        earliest = heapq.heappop(heap)
        heapq.heappush(heap, earliest + cost)
    return max(heap)


#: Cost category -> composed-timeline segment kind (the end-to-end
#: accounting vocabulary: every covered nanosecond of wall time is a
#: transfer, compute or api nanosecond — or "overlap" where kinds
#: coincide; see :meth:`ScheduleTimeline.attribution`).
TIMELINE_KIND_OF = {
    "h2d": "transfer",
    "d2h": "transfer",
    "kernel": "compute",
    "host": "api",
}

#: Attribution buckets, in reporting order.
TIMELINE_SEGMENTS = ("transfer", "compute", "api", "overlap", "idle")


class ScheduleTimeline:
    """The composed cross-queue end-to-end timeline of one clock.

    The per-queue schedule timelines (``Event.sched_start_ns`` /
    ``sched_end_ns``) are queue-local: origin 0 at queue creation, no
    knowledge of host work or of other queues.  This class composes
    everything priced on one :class:`SimClock` onto a **shared origin**
    so a measured run has a single end-to-end wall-time axis:

    * **serial work** — host API calls, VM bytecode, and device charges
      that never pass through a command queue (the OpenACC runtime's
      synchronous dispatches) — occupies the host cursor sequentially:
      each charge covers ``[host_pos, host_pos + ns)`` and advances the
      cursor;
    * **queue commands** are *placed* by their queue at their composed
      coordinates (``Event.e2e_start_ns`` / ``e2e_end_ns``): released
      no earlier than the host cursor at enqueue time, then subject to
      the same fence/dependency/engine rules as the queue-local
      schedule (see repro.opencl.queue);
    * :meth:`host_wait` models a blocking host call (``clFinish``): the
      cursor jumps to the queue's composed makespan, so commands
      enqueued afterwards — on *any* queue — start no earlier.

    ``elapsed_ns`` is the critical-path end-to-end time: the maximum
    covered instant.  :meth:`attribution` splits it exactly (computed
    in rational arithmetic, so the buckets sum to ``elapsed_ns`` with
    no nanosecond double-counted or dropped) into the four Figure-3-
    style wall-time segments: ``transfer``, ``compute``, ``api`` and
    ``overlap`` — the time during which work of more than one kind was
    in flight, which per-category busy totals can never show.

    ``reset()`` (called by ``Context.reset_ledger`` between measured
    runs) starts a new epoch at origin 0; queues re-anchor their
    composed state lazily on the next placement, keeping their
    queue-local schedules — and ``queue.overlap_ns`` — intact.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: completed composed segments as ``(start, end, kind)`` tuples
        self.segments: list[tuple[float, float, str]] = []
        self._host_pos = 0.0
        self._max_end = 0.0
        self.epoch = 0

    @property
    def host_pos_ns(self) -> float:
        """The host cursor: where serial work has advanced to."""
        with self._lock:
            return self._host_pos

    @property
    def elapsed_ns(self) -> float:
        """End-to-end time: the latest covered composed instant."""
        with self._lock:
            return max(self._max_end, self._host_pos)

    def serial_advance(self, kind: str, ns: float) -> float:
        """Occupy ``[host_pos, host_pos + ns)`` with *kind*; returns the
        segment's start.  Adjacent same-kind serial segments coalesce
        (exact: attribution over ``[a,b)+[b,c)`` equals ``[a,c)``)."""
        with self._lock:
            start = self._host_pos
            end = start + ns
            self._host_pos = end
            if ns > 0.0:
                if (
                    self.segments
                    and self.segments[-1][1] == start
                    and self.segments[-1][2] == kind
                ):
                    self.segments[-1] = (self.segments[-1][0], end, kind)
                else:
                    self.segments.append((start, end, kind))
                if end > self._max_end:
                    self._max_end = end
            return start

    def place(self, kind: str, start_ns: float, end_ns: float) -> None:
        """Record a queue command at its composed coordinates."""
        with self._lock:
            if end_ns > start_ns:
                self.segments.append((start_ns, end_ns, kind))
                if end_ns > self._max_end:
                    self._max_end = end_ns

    def host_wait(self, until_ns: float) -> None:
        """Block the host cursor until *until_ns* (``clFinish`` model).

        The waiting time itself is idle host, not a segment: the device
        work the host waits on already covers it.
        """
        with self._lock:
            if until_ns > self._host_pos:
                self._host_pos = until_ns

    def reset(self) -> None:
        """Start a new epoch at origin 0 (between measured runs)."""
        with self._lock:
            self.segments.clear()
            self._host_pos = 0.0
            self._max_end = 0.0
            self.epoch += 1

    def attribution_exact(self) -> dict[str, Fraction]:
        """Exact wall-time split of ``[0, elapsed_ns)`` as Fractions.

        A sweep over the segment boundaries attributes every elementary
        interval to the one kind covering it, to ``overlap`` when kinds
        of more than one sort cover it (concurrent same-kind work stays
        that kind: two devices computing is still compute time), and to
        ``idle`` when nothing covers it.  Fractions make the telescoping
        sum exact: the bucket values sum to precisely ``elapsed_ns``.
        """
        with self._lock:
            segs = [
                (Fraction(s), Fraction(e), kind)
                for s, e, kind in self.segments
                if e > s
            ]
            elapsed = Fraction(max(self._max_end, self._host_pos))
        totals = {segment: Fraction(0) for segment in TIMELINE_SEGMENTS}
        if elapsed <= 0:
            return totals
        deltas: dict[Fraction, dict[str, int]] = {}
        for start, end, kind in segs:
            deltas.setdefault(start, {}).setdefault(kind, 0)
            deltas[start][kind] += 1
            deltas.setdefault(end, {}).setdefault(kind, 0)
            deltas[end][kind] -= 1
        deltas.setdefault(Fraction(0), {})
        deltas.setdefault(elapsed, {})
        bounds = sorted(deltas)
        active: dict[str, int] = {}
        for lo, hi in zip(bounds, bounds[1:]):
            for kind, delta in deltas[lo].items():
                active[kind] = active.get(kind, 0) + delta
            if lo >= elapsed:
                break
            kinds = [k for k, depth in active.items() if depth > 0]
            if not kinds:
                bucket = "idle"
            elif len(kinds) == 1:
                bucket = kinds[0]
            else:
                bucket = "overlap"
            totals[bucket] += min(hi, elapsed) - lo
        return totals

    def attribution(self) -> dict[str, float]:
        """:meth:`attribution_exact` as floats, for reporting."""
        return {
            kind: float(value)
            for kind, value in self.attribution_exact().items()
        }


class SimClock:
    """A monotonically accumulating simulated-time counter.

    The reproduction reports *busy time*: every priced action (transfer,
    kernel, API call, interpreted bytecode) adds its duration here.
    The clock is thread-safe because actor runtimes charge it from
    multiple actor threads.  The attached :class:`ScheduleTimeline`
    (``clock.timeline``) composes the same charges onto a shared
    end-to-end wall-time axis — busy time and elapsed time are the two
    reported views of one run.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._lock = threading.Lock()
        self.timeline = ScheduleTimeline()

    @property
    def now_ns(self) -> float:
        return self._now

    def advance(self, ns: float) -> float:
        """Add *ns* and return the new now."""
        if ns < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now += ns
            return self._now

    def reset(self) -> None:
        with self._lock:
            self._now = 0.0
        self.timeline.reset()


@dataclass
class CostLedger:
    """Per-category totals for one measured run (Figure 3 segments)."""

    h2d_ns: float = 0.0
    d2h_ns: float = 0.0
    kernel_ns: float = 0.0
    host_ns: float = 0.0
    api_calls: int = 0
    kernel_launches: int = 0
    bytes_to_device: int = 0
    bytes_from_device: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def charge(self, category: str, ns: float) -> None:
        with self._lock:
            if category == "h2d":
                self.h2d_ns += ns
            elif category == "d2h":
                self.d2h_ns += ns
            elif category == "kernel":
                self.kernel_ns += ns
            elif category == "host":
                self.host_ns += ns
            else:
                raise ValueError(f"unknown cost category {category!r}")

    @property
    def total_ns(self) -> float:
        return self.h2d_ns + self.d2h_ns + self.kernel_ns + self.host_ns

    def breakdown(self) -> dict[str, float]:
        """Figure-3-style segments (nanoseconds)."""
        return {
            "to_device": self.h2d_ns,
            "from_device": self.d2h_ns,
            "kernel": self.kernel_ns,
            "overhead": self.host_ns,
        }


_spec_counter = itertools.count(1)


def gpu_spec(scale: float = 1.0, name: str | None = None) -> DeviceSpec:
    """An R9-290x-class device.

    ``scale`` shrinks the machine proportionally (lanes and bandwidth)
    so benchmark problem sizes far below the paper's (1024² matrices,
    2^25-element arrays) exercise the same occupancy regime.  scale=1 is
    the full 44-CU part.
    """
    cu = max(2, round(44 * scale))
    return DeviceSpec(
        name=name or f"Repro Radeon Sim {next(_spec_counter)}",
        device_type=GPU,
        compute_units=cu,
        simd_width=16,
        ops_per_ns=1.0,
        h2d_bytes_per_ns=max(0.5, 12.0 * scale),
        d2h_bytes_per_ns=max(0.5, 10.0 * scale),
        transfer_latency_ns=max(400.0, 8_000.0 * scale),
        kernel_launch_ns=max(800.0, 15_000.0 * scale),
        api_call_ns=300.0,
        compile_ns=max(20_000.0, 120_000.0 * scale),
        max_work_group_size=256,
    )


def cpu_spec(scale: float = 1.0, name: str | None = None) -> DeviceSpec:
    """An i5-3550-class device exposed through OpenCL."""
    cu = max(1, round(4 * scale))
    return DeviceSpec(
        name=name or f"Repro Core i5 Sim {next(_spec_counter)}",
        device_type=CPU,
        compute_units=cu,
        simd_width=4,
        ops_per_ns=2.0,
        h2d_bytes_per_ns=max(1.0, 30.0 * scale),
        d2h_bytes_per_ns=max(1.0, 30.0 * scale),
        transfer_latency_ns=max(50.0, 400.0 * scale),
        kernel_launch_ns=max(250.0, 2_500.0 * scale),
        api_call_ns=200.0,
        compile_ns=max(15_000.0, 80_000.0 * scale),
        max_work_group_size=1024,
    )
