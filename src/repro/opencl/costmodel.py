"""Deterministic performance model for the simulated OpenCL devices.

The paper reports wall-clock times on an AMD R9 290x GPU and an Intel
i5-3550 CPU.  This environment has neither, so every reported time in
the reproduction comes from this model instead: a deterministic pricing
of the *actually executed* work.  The model charges:

* **transfers** — latency + bytes/bandwidth, asymmetric for host-to-
  device vs device-to-host (PCIe-like for the GPU device);
* **kernels** — per-work-item dynamic operation counts (measured by the
  execution engine) grouped into SIMD "warps" (a warp's cost is the max
  of its lanes — divergence is paid for), warps summed per work-group,
  and work-groups scheduled in order onto compute units; kernel time is
  the makespan plus a fixed launch overhead;
* **host code** — a per-API-call charge for the C-style baseline, and a
  per-bytecode charge for the Ensemble VM (the paper's interpreter
  overhead).

Because every figure is priced from executed operations, the reported
numbers are exactly reproducible on any machine.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Sequence

CPU = "CPU"
GPU = "GPU"
ACCELERATOR = "ACCELERATOR"

#: Simulated byte widths of buffer element types.
ELEMENT_BYTES = {"float": 4, "int": 4, "bool": 1}


@dataclass(frozen=True)
class DeviceSpec:
    """Static performance parameters of one simulated device."""

    name: str
    device_type: str
    compute_units: int
    simd_width: int
    #: per-lane primitive-operation throughput, operations per nanosecond
    ops_per_ns: float
    #: host->device bandwidth, bytes per nanosecond
    h2d_bytes_per_ns: float
    #: device->host bandwidth, bytes per nanosecond
    d2h_bytes_per_ns: float
    #: fixed per-transfer latency
    transfer_latency_ns: float
    #: fixed per-dispatch kernel launch cost
    kernel_launch_ns: float
    #: cost charged per host API call
    api_call_ns: float
    #: one-off runtime program build cost
    compile_ns: float
    max_work_group_size: int = 256

    @property
    def lanes(self) -> int:
        return self.compute_units * self.simd_width

    def transfer_ns(self, nbytes: int, to_device: bool) -> float:
        """Simulated duration of moving *nbytes* across the host link."""
        bw = self.h2d_bytes_per_ns if to_device else self.d2h_bytes_per_ns
        return self.transfer_latency_ns + nbytes / bw

    def kernel_ns(
        self,
        item_ops: Sequence[int],
        global_size: Sequence[int],
        local_size: Sequence[int],
    ) -> float:
        """Price one NDRange dispatch from measured per-item op counts.

        ``item_ops`` is in linear order (dim0 fastest), as produced by
        the execution engine.
        """
        group_warps = group_warp_costs(
            item_ops, global_size, local_size, self.simd_width
        )
        return self.kernel_ns_from_group_warps(group_warps)

    def kernel_ns_from_group_warps(
        self, group_warps: Sequence[Sequence[int]]
    ) -> float:
        """Price a dispatch from per-group lists of warp op maxima.

        The divergence rule only ever consumes warp-level maxima, so
        runners that reduce lanes to warp maxima on the fly (the batched
        execution fast path) feed this directly and produce bit-identical
        times to :meth:`kernel_ns` over the full per-item list.
        """
        group_ns = [
            sum(w for w in warps) / self.ops_per_ns for warps in group_warps
        ]
        makespan = _schedule(group_ns, self.compute_units)
        return self.kernel_launch_ns + makespan


def group_warp_costs(
    item_ops: Sequence[int],
    global_size: Sequence[int],
    local_size: Sequence[int],
    simd: int,
) -> list[list[int]]:
    """Partition per-item op counts into per-group lists of warp costs.

    A warp is ``simd`` consecutive work-items of the same group (taken
    in linear intra-group order); its cost is the maximum of its lanes,
    modelling lock-step divergence.  Public because the multi-device
    dispatcher folds each device's NDRange slice separately (with that
    device's SIMD width) — slicing at work-group boundaries keeps the
    per-group folds bit-identical to a whole-range fold.
    """
    g = list(global_size) + [1] * (3 - len(global_size))
    l = list(local_size) + [1] * (3 - len(local_size))
    ngrp = [gi // li for gi, li in zip(g, l)]

    # group linear index -> list of item ops (in arrival order)
    lanes: list[list[int]] = [[] for _ in range(ngrp[0] * ngrp[1] * ngrp[2])]
    idx = 0
    for z in range(g[2]):
        gz = z // l[2]
        for y in range(g[1]):
            gy = y // l[1]
            row_base = (gz * ngrp[1] + gy) * ngrp[0]
            for x in range(g[0]):
                lanes[row_base + x // l[0]].append(item_ops[idx])
                idx += 1

    out: list[list[int]] = []
    for ops in lanes:
        warps = [
            max(ops[i : i + simd]) for i in range(0, len(ops), simd)
        ]
        out.append(warps)
    return out


#: Backwards-compatible alias (pre-multi-device name).
_group_warp_costs = group_warp_costs


def _schedule(group_ns: Sequence[float], compute_units: int) -> float:
    """In-order greedy assignment of groups to CUs; returns the makespan."""
    if not group_ns:
        return 0.0
    if compute_units <= 1:
        return float(sum(group_ns))
    heap = [0.0] * min(compute_units, len(group_ns))
    heapq.heapify(heap)
    for cost in group_ns:
        earliest = heapq.heappop(heap)
        heapq.heappush(heap, earliest + cost)
    return max(heap)


class SimClock:
    """A monotonically accumulating simulated-time counter.

    The reproduction reports *busy time*: every priced action (transfer,
    kernel, API call, interpreted bytecode) adds its duration here.
    The clock is thread-safe because actor runtimes charge it from
    multiple actor threads.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._lock = threading.Lock()

    @property
    def now_ns(self) -> float:
        return self._now

    def advance(self, ns: float) -> float:
        """Add *ns* and return the new now."""
        if ns < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now += ns
            return self._now

    def reset(self) -> None:
        with self._lock:
            self._now = 0.0


@dataclass
class CostLedger:
    """Per-category totals for one measured run (Figure 3 segments)."""

    h2d_ns: float = 0.0
    d2h_ns: float = 0.0
    kernel_ns: float = 0.0
    host_ns: float = 0.0
    api_calls: int = 0
    kernel_launches: int = 0
    bytes_to_device: int = 0
    bytes_from_device: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def charge(self, category: str, ns: float) -> None:
        with self._lock:
            if category == "h2d":
                self.h2d_ns += ns
            elif category == "d2h":
                self.d2h_ns += ns
            elif category == "kernel":
                self.kernel_ns += ns
            elif category == "host":
                self.host_ns += ns
            else:
                raise ValueError(f"unknown cost category {category!r}")

    @property
    def total_ns(self) -> float:
        return self.h2d_ns + self.d2h_ns + self.kernel_ns + self.host_ns

    def breakdown(self) -> dict[str, float]:
        """Figure-3-style segments (nanoseconds)."""
        return {
            "to_device": self.h2d_ns,
            "from_device": self.d2h_ns,
            "kernel": self.kernel_ns,
            "overhead": self.host_ns,
        }


_spec_counter = itertools.count(1)


def gpu_spec(scale: float = 1.0, name: str | None = None) -> DeviceSpec:
    """An R9-290x-class device.

    ``scale`` shrinks the machine proportionally (lanes and bandwidth)
    so benchmark problem sizes far below the paper's (1024² matrices,
    2^25-element arrays) exercise the same occupancy regime.  scale=1 is
    the full 44-CU part.
    """
    cu = max(2, round(44 * scale))
    return DeviceSpec(
        name=name or f"Repro Radeon Sim {next(_spec_counter)}",
        device_type=GPU,
        compute_units=cu,
        simd_width=16,
        ops_per_ns=1.0,
        h2d_bytes_per_ns=max(0.5, 12.0 * scale),
        d2h_bytes_per_ns=max(0.5, 10.0 * scale),
        transfer_latency_ns=max(400.0, 8_000.0 * scale),
        kernel_launch_ns=max(800.0, 15_000.0 * scale),
        api_call_ns=300.0,
        compile_ns=max(20_000.0, 120_000.0 * scale),
        max_work_group_size=256,
    )


def cpu_spec(scale: float = 1.0, name: str | None = None) -> DeviceSpec:
    """An i5-3550-class device exposed through OpenCL."""
    cu = max(1, round(4 * scale))
    return DeviceSpec(
        name=name or f"Repro Core i5 Sim {next(_spec_counter)}",
        device_type=CPU,
        compute_units=cu,
        simd_width=4,
        ops_per_ns=2.0,
        h2d_bytes_per_ns=max(1.0, 30.0 * scale),
        d2h_bytes_per_ns=max(1.0, 30.0 * scale),
        transfer_latency_ns=max(50.0, 400.0 * scale),
        kernel_launch_ns=max(250.0, 2_500.0 * scale),
        api_call_ns=200.0,
        compile_ns=max(15_000.0, 80_000.0 * scale),
        max_work_group_size=1024,
    )
