"""Deterministic fault injection for the simulated OpenCL substrate.

The reproduction — like the paper — originally assumed every build,
transfer and dispatch succeeds.  This module supplies the failure path:
a **seeded, schedule-stable fault plan** that can make any chargeable
operation fail, paired with the bounded-retry / failover policies the
substrate recovers with (CAF's OpenCL actors lean on exactly this
supervision-style containment; see docs/RELIABILITY.md).

Operations a plan can fail (the ``op`` vocabulary):

===========  =======================================================
``build``    runtime program compilation (``clBuildProgram``)
``h2d``      host-to-device buffer writes
``d2h``      device-to-host buffer reads
``kernel``   NDRange kernel dispatch
``api``      host API calls charged via ``Context.charge_api_call``
``vec``      the vectorised execution tier (degrades to scalar tiers)
``native``   VM ``invokenative`` host calls (``fault.vm.native``)
``vm``       VM-driven kernel-actor dispatch (``fault.vm.dispatch``)
``handoff``  ensemble stage hand-offs — VM channel sends and
             :class:`~repro.actors.kernel_actor.KernelActor` result
             forwards (``fault.ensemble.handoff``)
===========  =======================================================

Fault kinds map to :mod:`repro.errors` subclasses: ``transient``
(recoverable by retry), ``permanent`` (every attempt fails) and
``device-lost`` (the device is marked lost; work fails over to
survivors).

**Determinism.**  A decision never consults wall clock, thread identity
or global arrival order.  Each chargeable operation carries a stable
*key* (``<kernel>@<device>`` for dispatches, ``buf<n>`` for transfers
where *n* is the buffer's creation ordinal within its context, the API
call name, the device name for builds); the plan keeps one occurrence
counter per ``(op, key)`` pair and decides occurrence *n* of a key by
hashing ``(seed, op, key, n)``.  Operations on one key are ordered by
program logic, so the decision sequence is identical run to run even
when unrelated actor threads interleave differently —
*schedule-stable*.  Explicit :class:`FaultSpec` entries select the same
``(op, key, n)`` coordinates directly.  One caveat: seeded *transfer*
faults are reproducible only when buffer creation order is itself
program-determined (true for host-driven workloads; actor pipelines
that race buffer creation should pin faults with explicit specs on the
name-based kernel/build/api keys instead).

The failed attempts and the simulated backoff between retries are
charged to the cost model (``fault.<op>`` / ``fault.backoff`` charge
names on the substrate; ``fault.vm.native`` / ``fault.vm.dispatch`` /
``fault.ensemble.handoff`` on the VM/Ensemble path — every fault
charge keeps the ``fault.`` span-name prefix, which is what the chaos
harness's recovery-cost oracle keys on), so priced totals of a faulted
run are reproducible bit-for-bit under a fixed seed.  With no plan
installed every gate is a single ``None`` check — golden figures are
byte-identical.

Install a plan via :func:`repro.opencl.dispatch.configure`::

    from repro.opencl import dispatch
    from repro.opencl.faults import FaultPlan, FaultSpec, RetryPolicy

    dispatch.configure(
        faults=FaultPlan([FaultSpec("h2d", kind="transient", times=2)]),
        retry=RetryPolicy(max_attempts=3, backoff_ns=500.0),
    )

Observability: every injection counts ``fault.injected`` and
``fault.injected.<kind>`` on the active tracer, every retry counts
``fault.retry``, and every recovery by re-dispatch or tier degradation
counts ``fault.failover``.
"""

from __future__ import annotations

import fnmatch
import hashlib
import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import (
    CLBuildProgramFailure,
    CLDeviceLost,
    CLError,
    CLInvalidValue,
    CLOutOfHostMemory,
    CLOutOfResources,
    CLTransferFailure,
)
from ..trace import current_tracer

#: Operations a fault plan may fail.
OPS = ("build", "h2d", "d2h", "kernel", "api", "vec",
       "native", "vm", "handoff")

#: Fault kinds, in increasing severity.
TRANSIENT = "transient"
PERMANENT = "permanent"
DEVICE_LOST = "device-lost"
KINDS = (TRANSIENT, PERMANENT, DEVICE_LOST)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *which* occurrences of *what* fail, and *how*.

    ``op`` is one of :data:`OPS`; ``key`` is an ``fnmatch`` pattern over
    operation keys (``None`` matches every key); the spec fires on
    occurrences ``index <= n < index + times`` of each matching
    ``(op, key)`` stream.  ``times > 1`` with ``kind="transient"``
    models a fault that persists across that many retry attempts.
    """

    op: str
    kind: str = TRANSIENT
    key: Optional[str] = None
    index: int = 0
    times: int = 1

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise CLInvalidValue(f"unknown fault op {self.op!r}")
        if self.kind not in KINDS:
            raise CLInvalidValue(f"unknown fault kind {self.kind!r}")
        if self.index < 0 or self.times < 1:
            raise CLInvalidValue("fault index must be >= 0 and times >= 1")

    def matches(self, op: str, key: str, occurrence: int) -> bool:
        """Whether this spec fires for occurrence *occurrence* of (op, key)."""
        if op != self.op:
            return False
        if self.key is not None and not fnmatch.fnmatchcase(key, self.key):
            return False
        return self.index <= occurrence < self.index + self.times


@dataclass(frozen=True)
class Fault:
    """One decided injection: the coordinates and kind of a failure."""

    op: str
    kind: str
    key: str
    occurrence: int

    @property
    def transient(self) -> bool:
        """Whether a bounded retry of the operation may succeed."""
        return self.kind == TRANSIENT


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-simulated-backoff for transient faults.

    ``max_attempts`` bounds the *total* tries of one operation (first
    attempt included).  Each retry charges ``backoff_ns * attempt`` of
    simulated host time before trying again, so faulted runs price their
    recovery deterministically.
    """

    max_attempts: int = 3
    backoff_ns: float = 1_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CLInvalidValue("max_attempts must be >= 1")
        if self.backoff_ns < 0:
            raise CLInvalidValue("backoff_ns must be >= 0")


def _unit_interval(seed: int, op: str, key: str, occurrence: int) -> float:
    """Deterministic hash of one decision coordinate onto [0, 1)."""
    digest = hashlib.sha256(
        f"{seed}|{op}|{key}|{occurrence}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _pick_kind(
    seed: int, op: str, key: str, occurrence: int, kinds: Sequence[str]
) -> str:
    """Deterministically choose a kind for a seeded injection."""
    digest = hashlib.sha256(
        f"kind|{seed}|{op}|{key}|{occurrence}".encode()
    ).digest()
    return kinds[int.from_bytes(digest[8:16], "big") % len(kinds)]


class FaultPlan:
    """A deterministic schedule of failures for one measured run.

    Two (combinable) sources of faults:

    * **explicit** :class:`FaultSpec` entries — fire at exact
      ``(op, key, occurrence)`` coordinates;
    * **seeded random** — with ``rate > 0``, each occurrence of an op in
      ``ops`` fails with probability *rate*, decided by hashing
      ``(seed, op, key, occurrence)``; the kind is drawn (same hash
      family) from ``kinds``.

    The plan is stateful: it keeps one occurrence counter per
    ``(op, key)`` pair, advanced by every :meth:`decide` call (retries
    included).  :meth:`reset` rewinds the counters so the same plan
    object replays identically — two runs under one seed produce the
    same injections, hence bit-identical priced totals.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        seed: int = 0,
        rate: float = 0.0,
        kinds: Sequence[str] = (TRANSIENT,),
        ops: Sequence[str] = ("h2d", "d2h", "kernel", "api"),
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise CLInvalidValue(f"fault rate must be in [0, 1], got {rate!r}")
        for kind in kinds:
            if kind not in KINDS:
                raise CLInvalidValue(f"unknown fault kind {kind!r}")
        for op in ops:
            if op not in OPS:
                raise CLInvalidValue(f"unknown fault op {op!r}")
        self.specs = tuple(specs)
        self.seed = int(seed)
        self.rate = float(rate)
        self.kinds = tuple(kinds)
        self.ops = tuple(ops)
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, str], int] = {}
        self._injected = 0

    @property
    def injected(self) -> int:
        """How many faults this plan has fired since the last reset."""
        with self._lock:
            return self._injected

    def reset(self) -> "FaultPlan":
        """Rewind the occurrence counters (replay the same schedule)."""
        with self._lock:
            self._counts.clear()
            self._injected = 0
        return self

    def decide(self, op: str, key: str) -> Optional[Fault]:
        """Advance the ``(op, key)`` stream one occurrence and decide it.

        Returns the :class:`Fault` to inject, or ``None`` when this
        occurrence succeeds.  Explicit specs win over the seeded draw
        (first matching spec decides the kind).
        """
        with self._lock:
            occurrence = self._counts.get((op, key), 0)
            self._counts[(op, key)] = occurrence + 1
            fault = self._decide_at(op, key, occurrence)
            if fault is not None:
                self._injected += 1
            return fault

    def _decide_at(self, op: str, key: str, occurrence: int) -> Optional[Fault]:
        for spec in self.specs:
            if spec.matches(op, key, occurrence):
                return Fault(op, spec.kind, key, occurrence)
        if (
            self.rate > 0.0
            and op in self.ops
            and _unit_interval(self.seed, op, key, occurrence) < self.rate
        ):
            kind = _pick_kind(self.seed, op, key, occurrence, self.kinds)
            return Fault(op, kind, key, occurrence)
        return None

    def __repr__(self) -> str:
        return (
            f"<FaultPlan specs={len(self.specs)} seed={self.seed} "
            f"rate={self.rate}>"
        )


# -- installed plan / policy -------------------------------------------------

_state_lock = threading.Lock()
_plan: Optional[FaultPlan] = None
_policy = RetryPolicy()


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install *plan* process-wide (``None`` disables injection).

    Returns the previously installed plan so callers can restore it.
    """
    global _plan
    with _state_lock:
        previous = _plan
        _plan = plan
    return previous


def active_plan() -> Optional[FaultPlan]:
    """The installed fault plan, or ``None`` (the fault-free default)."""
    return _plan


def set_retry_policy(policy: RetryPolicy) -> RetryPolicy:
    """Install the retry policy; returns the previous one."""
    global _policy
    if not isinstance(policy, RetryPolicy):
        raise CLInvalidValue("retry policy must be a RetryPolicy")
    with _state_lock:
        previous = _policy
        _policy = policy
    return previous


def retry_policy() -> RetryPolicy:
    """The active bounded-retry policy."""
    return _policy


def clear() -> None:
    """Remove the plan and restore the default retry policy (tests)."""
    global _plan, _policy
    with _state_lock:
        _plan = None
        _policy = RetryPolicy()


# -- exception mapping / counters -------------------------------------------

_EXC_OF_OP = {
    "h2d": CLTransferFailure,
    "d2h": CLTransferFailure,
    "kernel": CLOutOfResources,
    "api": CLOutOfHostMemory,
    "vec": CLOutOfResources,
    "native": CLOutOfHostMemory,
    "vm": CLOutOfResources,
    "handoff": CLOutOfHostMemory,
}


def exception_for(fault: Fault, detail: str = "") -> CLError:
    """The :mod:`repro.errors` instance matching an injected *fault*.

    ``device-lost`` maps to :class:`CLDeviceLost` for every op; builds
    map to :class:`CLBuildProgramFailure` (with an injected build log);
    other ops map per :data:`_EXC_OF_OP`.  The instance carries the
    fault on ``.fault`` and its retryability on ``.transient``.
    """
    message = (
        f"injected {fault.kind} fault on {fault.op} "
        f"[{fault.key} #{fault.occurrence}]"
    )
    if detail:
        message = f"{message}: {detail}"
    if fault.kind == DEVICE_LOST:
        exc: CLError = CLDeviceLost(message)
    elif fault.op == "build":
        exc = CLBuildProgramFailure(message, build_log=message)
    else:
        exc = _EXC_OF_OP[fault.op](message)
    exc.fault = fault
    exc.transient = fault.transient
    return exc


def count_injection(fault: Fault) -> None:
    """Record one injection on the active tracer
    (``fault.injected`` + ``fault.injected.<kind>``)."""
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("fault.injected")
        tracer.count(f"fault.injected.{fault.kind}")


def count_retry() -> None:
    """Record one bounded-retry attempt (``fault.retry``)."""
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("fault.retry")


def count_failover() -> None:
    """Record one recovery by re-dispatch or tier degradation
    (``fault.failover``)."""
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("fault.failover")


def host_gate(
    op: str,
    key: str,
    attempt_ns: float,
    charge,
    *,
    span_name: Optional[str] = None,
    device=None,
) -> None:
    """Generic fault gate for host-side injection sites (VM/runtime).

    The exact idiom of the substrate gates
    (:meth:`repro.opencl.queue.CommandQueue._fault_gate`), factored out
    so the VM/Ensemble path charges failed attempts and backoff
    identically: each injected failure calls ``charge(ns, name, args)``
    with the aborted attempt (*attempt_ns* under *span_name*, default
    ``fault.<op>``), transient faults retry up to the active
    :class:`RetryPolicy` bound with ``fault.backoff`` host time charged
    per attempt, ``device-lost`` marks *device* lost (when given) and
    raises :class:`~repro.errors.CLDeviceLost`, and unrecoverable
    faults raise per :func:`exception_for`.  With no plan installed the
    gate is a single ``None`` check.
    """
    plan = active_plan()
    if plan is None:
        return
    policy = retry_policy()
    name = span_name or f"fault.{op}"
    attempt = 1
    while True:
        fault = plan.decide(op, key)
        if fault is None:
            return
        count_injection(fault)
        if attempt_ns > 0.0:
            charge(attempt_ns, name, {"key": key, "kind": fault.kind})
        if fault.kind == DEVICE_LOST:
            if device is not None:
                device.mark_lost()
                raise exception_for(fault, f"device {device.name!r}")
            raise exception_for(fault)
        if fault.transient and attempt < policy.max_attempts:
            if policy.backoff_ns > 0.0:
                charge(policy.backoff_ns * attempt, "fault.backoff", None)
            count_retry()
            attempt += 1
            continue
        raise exception_for(fault)
