"""Matrix (array) reduction — all source variants (Section 7.1, Fig 3d).

The paper finds the minimum of a 33,554,432-element array with a
parallel tree reduction in a single kernel.  Each work-group reduces 64
elements through local memory with barriers; the host combines the
per-group partials.  The paper notes this application "required very
different kernel logic to the single-threaded equivalent in both
Ensemble and C" — visible here as the local-memory/barrier code — while
OpenACC keeps the one-line loop with a ``reduction`` clause and pays for
it in performance.

Input: ``v[i] = ((i * 1103515245 + 12345) % 100000) + 1`` with a planted
minimum ``0.5`` at ``3n/4``.
"""

GROUP = 64

KERNEL_SOURCE = """
__kernel void reduce_min(__global float *data, __global float *partial,
                         int n) {
    __local float tile[64];
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int width = get_local_size(0);
    if (gid < n) {
        tile[lid] = data[gid];
    } else {
        tile[lid] = data[0];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = width / 2; s > 0; s = s / 2) {
        if (lid < s) {
            if (tile[lid + s] < tile[lid]) {
                tile[lid] = tile[lid + s];
            }
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        partial[get_group_id(0)] = tile[0];
    }
}
"""

SINGLE_C_SOURCE = """
void generate(__global float *v, int n) {
    for (int i = 0; i < n; i++) {
        v[i] = (float)((i * 1103515245 + 12345) % 100000) + 1.0;
    }
    v[3 * n / 4] = 0.5;
}

float reduce_min(__global float *v, int n) {
    float m = v[0];
    for (int i = 1; i < n; i++) {
        if (v[i] < m) {
            m = v[i];
        }
    }
    return m;
}

float run(int n) {
    float v[n];
    generate(v, n);
    return reduce_min(v, n);
}
"""

OPENACC_SOURCE = """
void generate(__global float *v, int n) {
    for (int i = 0; i < n; i++) {
        v[i] = (float)((i * 1103515245 + 12345) % 100000) + 1.0;
    }
    v[3 * n / 4] = 0.5;
}

float reduce_min(__global float *v, int n) {
    float m = v[0];
    #pragma acc parallel loop reduction(min:m) copyin(v[0:n])
    for (int i = 0; i < n; i++) {
        if (v[i] < m) {
            m = v[i];
        }
    }
    return m;
}

float run(int n) {
    float v[n];
    generate(v, n);
    return reduce_min(v, n);
}
"""

ENSEMBLE_SINGLE_SOURCE_TEMPLATE = """
type data_t is struct (
    real [] values;
    real [] partial
)
type dispatchI is interface (
  out data_t dout;
  in data_t din
)
type reduceI is interface(
  in data_t input;
  out data_t output
)

stage home {{
  actor Reduce presents reduceI {{
    constructor() {{}}
    behaviour {{
      receive d from input;
      n = length(d.values);
      m = d.values[0];
      for i = 1 .. n - 1 do {{
        if d.values[i] < m then {{
          m := d.values[i];
        }}
      }}
      d.partial[0] := m;
      send d on output;
    }}
  }}

  actor Dispatch presents dispatchI {{
    constructor() {{}}
    behaviour {{
      n = {n};
      v = new real[n] of 0.0;
      fillPattern1D(v, 1103515245, 12345, 100000, 1, 1.0);
      v[3 * n / 4] := 0.5;
      partial = new real[1] of 0.0;
      d = new data_t(v, partial);
      send d on dout;
      receive d from din;
      printString("minimum=");
      printReal(d.partial[0]);
      stop;
    }}
  }}

  boot {{
    d = new Dispatch();
    r = new Reduce();
    connect d.dout to r.input;
    connect r.output to d.din;
  }}
}}
"""

ENSEMBLE_OPENCL_SOURCE_TEMPLATE = """
type data_t is struct (
    real [] values;
    real [] partial
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in mov data_t input;
    out mov data_t output
)
type dispatchI is interface (
  out settings_t requests;
  out mov data_t dout;
  in mov data_t din
)
type reduceI is interface(
  in settings_t requests
)

stage home {{
  opencl <device_index=0, device_type={device_type}>
  actor Reduce presents reduceI {{
    constructor() {{}}
    behaviour {{
      receive req from requests;
      receive d from req.input;
      tile = new local real[{group}] of 0.0;
      gid = get_global_id(0);
      lid = get_local_id(0);
      width = get_local_size(0);
      tile[lid] := d.values[gid];
      barrier();
      s = width / 2;
      while s > 0 do {{
        if lid < s then {{
          if tile[lid + s] < tile[lid] then {{
            tile[lid] := tile[lid + s];
          }}
        }}
        barrier();
        s := s / 2;
      }}
      if lid == 0 then {{
        d.partial[get_group_id(0)] := tile[0];
      }}
      send d on req.output;
    }}
  }}

  actor Dispatch presents dispatchI {{
    constructor() {{}}
    behaviour {{
      n = {n};
      groups = n / {group};
      ws = new integer[1] of n;
      gs = new integer[1] of {group};
      i = new in mov data_t;
      o = new out mov data_t;

      connect dout to i;
      connect o to din;

      config = new settings_t(ws, gs, i, o);
      v = new real[n] of 0.0;
      fillPattern1D(v, 1103515245, 12345, 100000, 1, 1.0);
      v[3 * n / 4] := 0.5;
      partial = new real[groups] of 0.0;
      d = new data_t(v, partial);
      send config on requests;
      send d on dout;
      receive d from din;
      m = minElement(d.partial);
      printString("minimum=");
      printReal(m);
      stop;
    }}
  }}

  boot {{
    d = new Dispatch();
    r = new Reduce();
    connect d.requests to r.requests;
  }}
}}
"""


def ensemble_single_source(n: int) -> str:
    return ENSEMBLE_SINGLE_SOURCE_TEMPLATE.format(n=n)


def ensemble_opencl_source(n: int, device_type: str = "GPU") -> str:
    if n % GROUP:
        raise ValueError(f"n must be a multiple of {GROUP}")
    return ENSEMBLE_OPENCL_SOURCE_TEMPLATE.format(
        n=n, device_type=device_type, group=GROUP
    )
