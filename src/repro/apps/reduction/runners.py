"""Matrix reduction — the five runnable variants."""

from __future__ import annotations

from ...actors import ManagedArray, run_kernel
from ...opencl.api import (
    CL_MEM_READ_ONLY,
    CL_MEM_WRITE_ONLY,
    clBuildProgram,
    clCreateBuffer,
    clCreateCommandQueue,
    clCreateContext,
    clCreateKernel,
    clCreateProgramWithSource,
    clEnqueueNDRangeKernel,
    clEnqueueReadBuffer,
    clEnqueueWriteBuffer,
    clFinish,
    clGetDeviceIDs,
    clGetPlatformIDs,
    clReleaseCommandQueue,
    clReleaseContext,
    clReleaseKernel,
    clReleaseMemObject,
    clReleaseProgram,
    clSetKernelArg,
)
from ...openacc.runtime import AccProgram
from ..common import (
    RunOutcome,
    collect_runtime_ledger,
    merge_ledgers,
    reset_runtime_ledgers,
    run_host_c,
)
from .sources import (
    GROUP,
    KERNEL_SOURCE,
    OPENACC_SOURCE,
    SINGLE_C_SOURCE,
    ensemble_opencl_source,
    ensemble_single_source,
)

DEFAULT_N = 4096


def generate(n: int) -> list[float]:
    v = [float((i * 1103515245 + 12345) % 100000) + 1.0 for i in range(n)]
    v[3 * n // 4] = 0.5
    return v


def run_python(n: int = DEFAULT_N) -> RunOutcome:
    v = generate(n)
    m = v[0]
    for value in v[1:]:
        if value < m:
            m = value
    return RunOutcome(m, {})


def run_single_c(n: int = DEFAULT_N) -> RunOutcome:
    value, host_ns = run_host_c(SINGLE_C_SOURCE, "run", [n])
    return RunOutcome(
        value,
        {"to_device": 0.0, "from_device": 0.0, "kernel": 0.0,
         "overhead": host_ns},
    )


def run_api(n: int = DEFAULT_N, device_type: str = "GPU") -> RunOutcome:
    platforms = clGetPlatformIDs()
    device = clGetDeviceIDs(platforms[0], device_type)[0]
    context = clCreateContext([device])
    queue = clCreateCommandQueue(context, device)
    program = clCreateProgramWithSource(context, KERNEL_SOURCE)
    clBuildProgram(program)
    kernel = clCreateKernel(program, "reduce_min")

    v = generate(n)
    groups = n // GROUP
    partial = [0.0] * groups
    buf_v = clCreateBuffer(context, [CL_MEM_READ_ONLY], n, "float")
    buf_p = clCreateBuffer(context, [CL_MEM_WRITE_ONLY], groups, "float")
    clEnqueueWriteBuffer(queue, buf_v, True, v)
    clSetKernelArg(kernel, 0, buf_v)
    clSetKernelArg(kernel, 1, buf_p)
    clSetKernelArg(kernel, 2, n)
    clEnqueueNDRangeKernel(queue, kernel, 1, [n], [GROUP])
    clEnqueueReadBuffer(queue, buf_p, True, partial)
    clFinish(queue)

    m = partial[0]
    for value in partial[1:]:
        if value < m:
            m = value

    clReleaseMemObject(buf_v)
    clReleaseMemObject(buf_p)
    clReleaseKernel(kernel)
    clReleaseProgram(program)
    clReleaseCommandQueue(queue)
    ledger = context.ledger
    clReleaseContext(context)
    return RunOutcome(m, merge_ledgers(ledger))


def run_actors(
    n: int = DEFAULT_N, device_type: str = "GPU", movable: bool = True
) -> RunOutcome:
    groups = n // GROUP
    data = {
        "data": ManagedArray(generate(n), (n,)),
        "partial": ManagedArray.zeros(groups),
        "n": n,
    }
    reset_runtime_ledgers()
    result = run_kernel(
        KERNEL_SOURCE,
        "reduce_min",
        data,
        worksize=[n],
        groupsize=[GROUP],
        device_type=device_type,
        movable=movable,
    )
    partial = result["partial"].host()
    m = min(partial)
    return RunOutcome(m, merge_ledgers(collect_runtime_ledger()))


def run_ensemble(n: int = DEFAULT_N, device_type: str = "GPU") -> RunOutcome:
    from ... import ensemble
    from ...runtime.vm import EnsembleVM

    compiled = ensemble.compile_source(ensemble_opencl_source(n, device_type))
    reset_runtime_ledgers()
    vm = EnsembleVM(compiled)
    vm.run(600.0)
    value = _parse_minimum(vm.output)
    return RunOutcome(
        value, merge_ledgers(collect_runtime_ledger(), vm.ledger)
    )


def run_ensemble_single(n: int = DEFAULT_N) -> RunOutcome:
    from ... import ensemble
    from ...runtime.vm import EnsembleVM

    compiled = ensemble.compile_source(ensemble_single_source(n))
    vm = EnsembleVM(compiled)
    vm.run(600.0)
    value = _parse_minimum(vm.output)
    return RunOutcome(
        value,
        {"to_device": 0.0, "from_device": 0.0, "kernel": 0.0,
         "overhead": vm.ledger.host_ns},
    )


def run_openacc(n: int = DEFAULT_N, device_type: str = "GPU") -> RunOutcome:
    program = AccProgram(OPENACC_SOURCE, device_type)
    result = program.run("run", [n])
    return RunOutcome(result.value, merge_ledgers(result.ledger))


def _parse_minimum(output: list[str]) -> float:
    for i, line in enumerate(output):
        if line.startswith("minimum="):
            return float(output[i + 1])
    raise AssertionError(f"no minimum in program output: {output!r}")
