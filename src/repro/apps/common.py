"""Shared infrastructure for the five evaluation applications.

Every application (Section 7.1) ships in five runnable variants:

=================  ==========================================================
``run_python``     plain single-threaded Python — the correctness oracle and
                   the API approach's single-threaded counterpart for Table 1
``run_single_c``   single-threaded kernel-C, interpreted at host speed —
                   the pragma approach's baseline for Table 1
``run_api``        C-OpenCL style: verbose flat ``cl*`` host code + kernel
                   source strings
``run_actors``     Ensemble-OpenCL via the Pythonic actor API (kernel actors,
                   channels, movability)
``run_ensemble``   Ensemble-OpenCL from actual Ensemble source through the
                   compiler and VM
``run_openacc``    pragma-annotated kernel-C through the OpenACC baseline
=================  ==========================================================

All runners return a :class:`RunOutcome` with the Figure-3 breakdown
segments computed from the cost ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .. import kcache, kernelc
from ..opencl import CostLedger
from ..opencl.context import current_clock
from ..openacc.runtime import HOST_OPS_PER_NS
from ..runtime.oclenv import device_matrix

@dataclass
class RunOutcome:
    """Result + cost breakdown of one application run."""

    result: Any
    breakdown: dict[str, float]
    meta: dict = field(default_factory=dict)

    @property
    def total_ns(self) -> float:
        return sum(self.breakdown.values())

    def segment(self, name: str) -> float:
        return self.breakdown.get(name, 0.0)


def merge_ledgers(*ledgers: Optional[CostLedger]) -> dict[str, float]:
    """Sum Figure-3 segments across ledgers (an app may span contexts)."""
    out = {"to_device": 0.0, "from_device": 0.0, "kernel": 0.0, "overhead": 0.0}
    for ledger in ledgers:
        if ledger is None:
            continue
        for key, value in ledger.breakdown().items():
            out[key] += value
    return out


def reset_runtime_ledgers() -> None:
    """Fresh ledgers on every runtime OpenCL environment.

    Also restarts the clock's composed end-to-end timeline directly:
    after a platform swap the device matrix holds no environments yet,
    so no context reset would reach the timeline, and the upcoming
    run's ``elapsed_ns`` would accumulate on top of the previous one.
    """
    current_clock().timeline.reset()
    device_matrix().reset_ledgers()


def collect_runtime_ledger() -> CostLedger:
    return device_matrix().combined_ledger()


def run_host_c(source: str, function: str, args: list) -> tuple[Any, float]:
    """Run single-threaded kernel-C at sequential host speed.

    Returns ``(value, simulated_ns)``.  Array arguments are mutated in
    place, exactly like C pointers.
    """
    compiled = kcache.get_or_build(source, None, options="host")
    value, ops = compiled.call(function, args)
    return value, ops / HOST_OPS_PER_NS



def checksum(values) -> float:
    """Order-sensitive digest used to compare variant outputs."""
    total = 0.0
    for i, v in enumerate(values):
        total += (i % 97 + 1) * float(v)
    return round(total, 6)

