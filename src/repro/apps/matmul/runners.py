"""Matrix multiplication — the five runnable variants."""

from __future__ import annotations

from ...actors import ManagedArray, run_kernel
from ...opencl.api import (
    CL_MEM_READ_ONLY,
    CL_MEM_WRITE_ONLY,
    clBuildProgram,
    clCreateBuffer,
    clCreateCommandQueue,
    clCreateContext,
    clCreateKernel,
    clCreateProgramWithSource,
    clEnqueueNDRangeKernel,
    clEnqueueReadBuffer,
    clEnqueueWriteBuffer,
    clFinish,
    clGetDeviceIDs,
    clGetPlatformIDs,
    clReleaseCommandQueue,
    clReleaseContext,
    clReleaseKernel,
    clReleaseMemObject,
    clReleaseProgram,
    clSetKernelArg,
)
from ...openacc.runtime import AccProgram
from ..common import (
    RunOutcome,
    checksum,
    collect_runtime_ledger,
    merge_ledgers,
    reset_runtime_ledgers,
    run_host_c,
)
from .sources import (
    KERNEL_SOURCE,
    OPENACC_SOURCE,
    SINGLE_C_SOURCE,
    ensemble_opencl_source,
    ensemble_single_source,
)

DEFAULT_N = 64


def generate(n: int) -> tuple[list[float], list[float]]:
    """The shared closed-form inputs (identical in every variant)."""
    a = [float((i * 7 + j * 3) % 11 - 5) for i in range(n) for j in range(n)]
    b = [float((i * 5 + j) % 7 - 3) for i in range(n) for j in range(n)]
    return a, b


def run_python(n: int = DEFAULT_N) -> RunOutcome:
    """Single-threaded Python (the API approach's sequential version)."""
    a, b = generate(n)
    c = [0.0] * (n * n)
    for i in range(n):
        for j in range(n):
            acc = 0.0
            for k in range(n):
                acc += a[i * n + k] * b[k * n + j]
            c[i * n + j] = acc
    return RunOutcome(checksum(c), {}, meta={"c": c})


def run_single_c(n: int = DEFAULT_N) -> RunOutcome:
    """Single-threaded kernel-C at sequential host speed."""
    c = [0.0] * (n * n)
    value, host_ns = run_host_c(SINGLE_C_SOURCE, "run", [c, n])
    return RunOutcome(
        round(value, 6),
        {"to_device": 0.0, "from_device": 0.0, "kernel": 0.0,
         "overhead": host_ns},
        meta={"c": c},
    )


def run_api(n: int = DEFAULT_N, device_type: str = "GPU") -> RunOutcome:
    """C-OpenCL: the verbose API path, boilerplate and all."""
    platforms = clGetPlatformIDs()
    devices = clGetDeviceIDs(platforms[0], device_type)
    device = devices[0]
    context = clCreateContext([device])
    queue = clCreateCommandQueue(context, device)
    program = clCreateProgramWithSource(context, KERNEL_SOURCE)
    clBuildProgram(program)
    kernel = clCreateKernel(program, "matmul")

    a, b = generate(n)
    c = [0.0] * (n * n)
    buf_a = clCreateBuffer(context, [CL_MEM_READ_ONLY], n * n, "float")
    buf_b = clCreateBuffer(context, [CL_MEM_READ_ONLY], n * n, "float")
    buf_c = clCreateBuffer(context, [CL_MEM_WRITE_ONLY], n * n, "float")
    clEnqueueWriteBuffer(queue, buf_a, True, a)
    clEnqueueWriteBuffer(queue, buf_b, True, b)
    clSetKernelArg(kernel, 0, buf_a)
    clSetKernelArg(kernel, 1, buf_b)
    clSetKernelArg(kernel, 2, buf_c)
    clSetKernelArg(kernel, 3, n)
    local = [8, 8] if n % 8 == 0 else None
    clEnqueueNDRangeKernel(queue, kernel, 2, [n, n], local)
    clEnqueueReadBuffer(queue, buf_c, True, c)
    clFinish(queue)

    clReleaseMemObject(buf_a)
    clReleaseMemObject(buf_b)
    clReleaseMemObject(buf_c)
    clReleaseKernel(kernel)
    clReleaseProgram(program)
    clReleaseCommandQueue(queue)
    ledger = context.ledger
    clReleaseContext(context)
    return RunOutcome(checksum(c), merge_ledgers(ledger), meta={"c": c})


def run_actors(
    n: int = DEFAULT_N, device_type: str = "GPU", movable: bool = True
) -> RunOutcome:
    """Ensemble-OpenCL through the Pythonic actor API."""
    a, b = generate(n)
    data = {
        "a": ManagedArray(a, (n * n,)),
        "b": ManagedArray(b, (n * n,)),
        "c": ManagedArray.zeros(n * n),
        "n": n,
    }
    reset_runtime_ledgers()
    result = run_kernel(
        KERNEL_SOURCE,
        "matmul",
        data,
        worksize=[n, n],
        groupsize=[8, 8] if n % 8 == 0 else None,
        device_type=device_type,
        movable=movable,
    )
    c = result["c"].host()
    return RunOutcome(
        checksum(c),
        merge_ledgers(collect_runtime_ledger()),
        meta={"c": c},
    )


def run_ensemble(n: int = DEFAULT_N, device_type: str = "GPU") -> RunOutcome:
    """Ensemble-OpenCL from language source through compiler and VM."""
    from ... import ensemble
    from ...runtime.vm import EnsembleVM

    compiled = ensemble.compile_source(
        ensemble_opencl_source(n, device_type)
    )
    reset_runtime_ledgers()
    vm = EnsembleVM(compiled)
    vm.run(300.0)
    value = _parse_checksum(vm.output)
    return RunOutcome(
        round(value, 6),
        merge_ledgers(collect_runtime_ledger(), vm.ledger),
        meta={"output": list(vm.output)},
    )


def run_ensemble_single(n: int = DEFAULT_N) -> RunOutcome:
    """Single-threaded Ensemble (Table 1's baseline for the approach)."""
    from ... import ensemble
    from ...runtime.vm import EnsembleVM

    compiled = ensemble.compile_source(ensemble_single_source(n))
    vm = EnsembleVM(compiled)
    vm.run(300.0)
    value = _parse_checksum(vm.output)
    return RunOutcome(
        round(value, 6),
        {"to_device": 0.0, "from_device": 0.0, "kernel": 0.0,
         "overhead": vm.ledger.host_ns},
    )


def run_openacc(n: int = DEFAULT_N, device_type: str = "GPU") -> RunOutcome:
    """C-OpenACC: the annotated source through the pragma compiler."""
    program = AccProgram(OPENACC_SOURCE, device_type)
    c = [0.0] * (n * n)
    result = program.run("run", [c, n])
    return RunOutcome(
        round(result.value, 6),
        merge_ledgers(result.ledger),
        meta={"c": c, "report": result.report},
    )


def _parse_checksum(output: list[str]) -> float:
    for i, line in enumerate(output):
        if line.startswith("checksum="):
            return float(output[i + 1])
    raise AssertionError(f"no checksum in program output: {output!r}")
