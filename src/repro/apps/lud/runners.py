"""LU decomposition — the five runnable variants."""

from __future__ import annotations

from ...actors import (
    Actor,
    InPort,
    KernelActor,
    KernelRequest,
    ManagedArray,
    OutPort,
    Stage,
    connect,
    mov,
)
from ...opencl.api import (
    CL_MEM_READ_WRITE,
    clBuildProgram,
    clCreateBuffer,
    clCreateCommandQueue,
    clCreateContext,
    clCreateKernel,
    clCreateProgramWithSource,
    clEnqueueNDRangeKernel,
    clEnqueueReadBuffer,
    clEnqueueWriteBuffer,
    clFinish,
    clGetDeviceIDs,
    clGetPlatformIDs,
    clReleaseCommandQueue,
    clReleaseContext,
    clReleaseKernel,
    clReleaseMemObject,
    clReleaseProgram,
    clSetKernelArg,
)
from ...openacc.runtime import AccProgram
from ..common import (
    RunOutcome,
    checksum,
    collect_runtime_ledger,
    merge_ledgers,
    reset_runtime_ledgers,
    run_host_c,
)
from .sources import (
    KERNEL_SOURCE,
    OPENACC_SOURCE,
    SINGLE_C_SOURCE,
    ensemble_opencl_source,
    ensemble_single_source,
)

DEFAULT_N = 48


def generate(n: int) -> list[float]:
    return [
        float(n) if i == j else ((i * 13 + j * 7) % 10) / 10.0
        for i in range(n)
        for j in range(n)
    ]


def run_python(n: int = DEFAULT_N) -> RunOutcome:
    m = generate(n)
    for k in range(n):
        for i in range(k + 1, n):
            m[i * n + k] = m[i * n + k] / m[k * n + k]
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                m[i * n + j] = m[i * n + j] - m[i * n + k] * m[k * n + j]
    return RunOutcome(checksum(m), {}, meta={"m": m})


def run_single_c(n: int = DEFAULT_N) -> RunOutcome:
    m = [0.0] * (n * n)
    value, host_ns = run_host_c(SINGLE_C_SOURCE, "run", [m, n])
    return RunOutcome(
        round(value, 6),
        {"to_device": 0.0, "from_device": 0.0, "kernel": 0.0,
         "overhead": host_ns},
        meta={"m": m},
    )


def run_api(n: int = DEFAULT_N, device_type: str = "GPU") -> RunOutcome:
    """Sequential host dispatch of the three kernels per step; the matrix
    buffer stays on the device for the whole factorisation."""
    platforms = clGetPlatformIDs()
    device = clGetDeviceIDs(platforms[0], device_type)[0]
    context = clCreateContext([device])
    queue = clCreateCommandQueue(context, device)
    program = clCreateProgramWithSource(context, KERNEL_SOURCE)
    clBuildProgram(program)
    k_pivot = clCreateKernel(program, "lud_pivot")
    k_scale = clCreateKernel(program, "lud_scale")
    k_update = clCreateKernel(program, "lud_update")

    m = generate(n)
    buf_m = clCreateBuffer(context, [CL_MEM_READ_WRITE], n * n, "float")
    buf_piv = clCreateBuffer(context, [CL_MEM_READ_WRITE], 1, "float")
    clEnqueueWriteBuffer(queue, buf_m, True, m)
    local = [8, 8] if n % 8 == 0 else None
    for k in range(n):
        clSetKernelArg(k_pivot, 0, buf_m)
        clSetKernelArg(k_pivot, 1, buf_piv)
        clSetKernelArg(k_pivot, 2, k)
        clSetKernelArg(k_pivot, 3, n)
        clEnqueueNDRangeKernel(queue, k_pivot, 1, [1], [1])
        clSetKernelArg(k_scale, 0, buf_m)
        clSetKernelArg(k_scale, 1, buf_piv)
        clSetKernelArg(k_scale, 2, k)
        clSetKernelArg(k_scale, 3, n)
        clEnqueueNDRangeKernel(queue, k_scale, 1, [n], None)
        clSetKernelArg(k_update, 0, buf_m)
        clSetKernelArg(k_update, 1, k)
        clSetKernelArg(k_update, 2, n)
        clEnqueueNDRangeKernel(queue, k_update, 2, [n, n], local)
    clEnqueueReadBuffer(queue, buf_m, True, m)
    clFinish(queue)

    clReleaseMemObject(buf_m)
    clReleaseMemObject(buf_piv)
    for kern in (k_pivot, k_scale, k_update):
        clReleaseKernel(kern)
    clReleaseProgram(program)
    clReleaseCommandQueue(queue)
    ledger = context.ledger
    clReleaseContext(context)
    return RunOutcome(checksum(m), merge_ledgers(ledger), meta={"m": m})


class _LudController(Actor):
    """The Figure-4 controller: plumbs the three kernel actors into a
    pipeline and streams the movable matrix through it n times."""

    reqs1 = OutPort()
    reqs2 = OutPort()
    reqs3 = OutPort()
    din = InPort()

    def __init__(self, n: int, movable: bool) -> None:
        super().__init__()
        self.n = n
        self.movable = movable
        self.m: ManagedArray | None = None

    def behaviour(self) -> None:
        n = self.n
        local = [8, 8] if n % 8 == 0 else None
        dout = OutPort(name="lud.dout")
        req1 = KernelRequest([1], None)
        req2 = KernelRequest([n], None)
        req3 = KernelRequest([n, n], local)
        connect(dout, req1.input)
        connect(req1.output, req2.input)
        connect(req2.output, req3.input)
        connect(req3.output, self.din)

        data = {
            "m": ManagedArray(generate(n), (n * n,)),
            "piv": ManagedArray.zeros(1),
            "k": 0,
            "n": n,
        }
        for k in range(n):
            data["k"] = k
            self.reqs1.send(req1)
            self.reqs2.send(req2)
            self.reqs3.send(req3)
            dout.send(mov(data) if self.movable else data)
            received = self.din.receive()
            data = received.value if self.movable else received
        self.m = data["m"]
        self.stop()


def run_actors(
    n: int = DEFAULT_N, device_type: str = "GPU", movable: bool = True
) -> RunOutcome:
    reset_runtime_ledgers()
    stage = Stage("lud")
    pivot = stage.spawn(KernelActor(KERNEL_SOURCE, "lud_pivot", device_type))
    scale = stage.spawn(KernelActor(KERNEL_SOURCE, "lud_scale", device_type))
    update = stage.spawn(KernelActor(KERNEL_SOURCE, "lud_update", device_type))
    control = stage.spawn(_LudController(n, movable))
    connect(control.reqs1, pivot.requests)
    connect(control.reqs2, scale.requests)
    connect(control.reqs3, update.requests)
    stage.run(600.0)
    assert control.m is not None
    m = control.m.host()
    return RunOutcome(
        checksum(m),
        merge_ledgers(collect_runtime_ledger()),
        meta={"m": m},
    )


def run_ensemble(
    n: int = DEFAULT_N, device_type: str = "GPU", movable: bool = True
) -> RunOutcome:
    from ... import ensemble
    from ...runtime.vm import EnsembleVM

    compiled = ensemble.compile_source(
        ensemble_opencl_source(n, device_type, movable)
    )
    reset_runtime_ledgers()
    vm = EnsembleVM(compiled)
    vm.run(600.0)
    value = _parse_checksum(vm.output)
    return RunOutcome(
        round(value, 6), merge_ledgers(collect_runtime_ledger(), vm.ledger)
    )


def run_ensemble_single(n: int = DEFAULT_N) -> RunOutcome:
    from ... import ensemble
    from ...runtime.vm import EnsembleVM

    compiled = ensemble.compile_source(ensemble_single_source(n))
    vm = EnsembleVM(compiled)
    vm.run(600.0)
    value = _parse_checksum(vm.output)
    return RunOutcome(
        round(value, 6),
        {"to_device": 0.0, "from_device": 0.0, "kernel": 0.0,
         "overhead": vm.ledger.host_ns},
    )


def run_openacc(n: int = DEFAULT_N, device_type: str = "GPU") -> RunOutcome:
    program = AccProgram(OPENACC_SOURCE, device_type)
    m = [0.0] * (n * n)
    result = program.run("run", [m, n])
    return RunOutcome(
        round(result.value, 6), merge_ledgers(result.ledger), meta={"m": m}
    )


def _parse_checksum(output: list[str]) -> float:
    for i, line in enumerate(output):
        if line.startswith("checksum="):
            return float(output[i + 1])
    raise AssertionError(f"no checksum in program output: {output!r}")
