"""LU decomposition — all source variants (Section 7.1, Figures 3c & 4).

Three kernels run in series per elimination step: ``lud_pivot`` captures
the pivot element, ``lud_scale`` divides the column below it, and
``lud_update`` applies the rank-1 trailing update.  In the Ensemble
version a controller actor *plumbs* the three kernel actors into a
pipeline (Figure 4) and the matrix travels as a movable value — it stays
on the device for the whole factorisation, which is the difference
between the paper's ~3 minutes (without ``mov``) and ~5 seconds (with).

The input matrix is diagonally dominant so factorisation without
pivoting is stable: ``m[i][j] = n if i == j else ((i*13 + j*7) % 10)/10``.
"""

KERNEL_SOURCE = """
__kernel void lud_pivot(__global float *m, __global float *piv,
                        int k, int n) {
    piv[0] = m[k * n + k];
}

__kernel void lud_scale(__global float *m, __global float *piv,
                        int k, int n) {
    int i = get_global_id(0);
    if (i > k) {
        m[i * n + k] = m[i * n + k] / piv[0];
    }
}

__kernel void lud_update(__global float *m, int k, int n) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i > k && j > k) {
        m[i * n + j] = m[i * n + j] - m[i * n + k] * m[k * n + j];
    }
}
"""

SINGLE_C_SOURCE = """
void generate(__global float *m, int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            if (i == j) {
                m[i * n + j] = (float)n;
            } else {
                m[i * n + j] = (float)((i * 13 + j * 7) % 10) / 10.0;
            }
        }
    }
}

void lud(__global float *m, int n) {
    for (int k = 0; k < n; k++) {
        for (int i = k + 1; i < n; i++) {
            m[i * n + k] = m[i * n + k] / m[k * n + k];
        }
        for (int i = k + 1; i < n; i++) {
            for (int j = k + 1; j < n; j++) {
                m[i * n + j] = m[i * n + j] - m[i * n + k] * m[k * n + j];
            }
        }
    }
}

float run(__global float *m, int n) {
    generate(m, n);
    lud(m, n);
    float check = 0.0;
    for (int i = 0; i < n * n; i++) {
        check += (float)(i % 97 + 1) * m[i];
    }
    return check;
}
"""

OPENACC_SOURCE = """
void generate(__global float *m, int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            if (i == j) {
                m[i * n + j] = (float)n;
            } else {
                m[i * n + j] = (float)((i * 13 + j * 7) % 10) / 10.0;
            }
        }
    }
}

void lud(__global float *m, int n) {
    #pragma acc data copy(m[0:n*n])
    for (int k = 0; k < n; k++) {
        #pragma acc parallel loop copy(m) gang vector
        for (int i = k + 1; i < n; i++) {
            m[i * n + k] = m[i * n + k] / m[k * n + k];
        }
        #pragma acc parallel loop collapse(2) copy(m) gang vector
        for (int i = k + 1; i < n; i++) {
            for (int j = k + 1; j < n; j++) {
                m[i * n + j] = m[i * n + j] - m[i * n + k] * m[k * n + j];
            }
        }
    }
}

float run(__global float *m, int n) {
    generate(m, n);
    lud(m, n);
    float check = 0.0;
    for (int i = 0; i < n * n; i++) {
        check += (float)(i % 97 + 1) * m[i];
    }
    return check;
}
"""

ENSEMBLE_SINGLE_SOURCE_TEMPLATE = """
type data_t is struct (
    real [][] m;
    real [] piv;
    integer k
)
type ctrlI is interface (
  out data_t dout;
  in data_t din
)
type ludI is interface(
  in data_t input;
  out data_t output
)

stage home {{
  actor Factor presents ludI {{
    constructor() {{}}
    behaviour {{
      receive d from input;
      n = length(d.m);
      for k = 0 .. n - 1 do {{
        for i = k + 1 .. n - 1 do {{
          d.m[i][k] := d.m[i][k] / d.m[k][k];
        }}
        for i = k + 1 .. n - 1 do {{
          for j = k + 1 .. n - 1 do {{
            d.m[i][j] := d.m[i][j] - d.m[i][k] * d.m[k][j];
          }}
        }}
      }}
      send d on output;
    }}
  }}

  actor Control presents ctrlI {{
    constructor() {{}}
    behaviour {{
      n = {n};
      m = new real[n][n] of 0.0;
      piv = new real[1] of 0.0;
      fillPattern2D(m, 13, 7, 0, 10, 0, 10.0);
      for i = 0 .. n - 1 do {{
        m[i][i] := intToReal(n);
      }}
      d = new data_t(m, piv, 0);
      send d on dout;
      receive d from din;
      check = checksumWeighted(d.m);
      printString("checksum=");
      printReal(check);
      stop;
    }}
  }}

  boot {{
    c = new Control();
    f = new Factor();
    connect c.dout to f.input;
    connect f.output to c.din;
  }}
}}
"""

# Figure 4 topology: Control plumbs Pivot -> Scale -> Update into a
# pipeline; the matrix travels as a movable value and never leaves the
# device between kernels.  {movable} lets the A-mov ablation turn the
# optimisation off.

ENSEMBLE_OPENCL_SOURCE_TEMPLATE = """
type data_t is struct (
    real [][] m;
    real [] piv;
    integer k
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in {mov}data_t input;
    out {mov}data_t output
)
type ctrlI is interface (
  out settings_t reqs1;
  out settings_t reqs2;
  out settings_t reqs3;
  out {mov}data_t dout;
  in {mov}data_t din
)
type kernI is interface(in settings_t requests)

stage home {{
  opencl <device_index=0, device_type={device_type}>
  actor Pivot presents kernI {{
    constructor() {{}}
    behaviour {{
      receive req from requests;
      receive d from req.input;
      d.piv[0] := d.m[d.k][d.k];
      send d on req.output;
    }}
  }}

  opencl <device_index=0, device_type={device_type}>
  actor Scale presents kernI {{
    constructor() {{}}
    behaviour {{
      receive req from requests;
      receive d from req.input;
      i = get_global_id(0);
      if i > d.k then {{
        d.m[i][d.k] := d.m[i][d.k] / d.piv[0];
      }}
      send d on req.output;
    }}
  }}

  opencl <device_index=0, device_type={device_type}>
  actor Update presents kernI {{
    constructor() {{}}
    behaviour {{
      receive req from requests;
      receive d from req.input;
      i = get_global_id(0);
      j = get_global_id(1);
      if i > d.k and j > d.k then {{
        d.m[i][j] := d.m[i][j] - d.m[i][d.k] * d.m[d.k][j];
      }}
      send d on req.output;
    }}
  }}

  actor Control presents ctrlI {{
    constructor() {{}}
    behaviour {{
      n = {n};
      ws1 = new integer[1] of 1;
      wsn = new integer[1] of n;
      wsq = new integer[2] of n;
      gs1 = new integer[1] of 0;
      gs2 = new integer[2] of 0;

      i1 = new in {mov}data_t;
      o1 = new out {mov}data_t;
      i2 = new in {mov}data_t;
      o2 = new out {mov}data_t;
      i3 = new in {mov}data_t;
      o3 = new out {mov}data_t;
      connect dout to i1;
      connect o1 to i2;
      connect o2 to i3;
      connect o3 to din;

      c1 = new settings_t(ws1, gs1, i1, o1);
      c2 = new settings_t(wsn, gs1, i2, o2);
      c3 = new settings_t(wsq, gs2, i3, o3);

      m = new real[n][n] of 0.0;
      piv = new real[1] of 0.0;
      fillPattern2D(m, 13, 7, 0, 10, 0, 10.0);
      for i = 0 .. n - 1 do {{
        m[i][i] := intToReal(n);
      }}
      d = new data_t(m, piv, 0);
      for k = 0 .. n - 1 do {{
        d.k := k;
        send c1 on reqs1;
        send c2 on reqs2;
        send c3 on reqs3;
        send d on dout;
        receive d from din;
      }}
      check = checksumWeighted(d.m);
      printString("checksum=");
      printReal(check);
      stop;
    }}
  }}

  boot {{
    c = new Control();
    p = new Pivot();
    s = new Scale();
    u = new Update();
    connect c.reqs1 to p.requests;
    connect c.reqs2 to s.requests;
    connect c.reqs3 to u.requests;
  }}
}}
"""


def ensemble_single_source(n: int) -> str:
    return ENSEMBLE_SINGLE_SOURCE_TEMPLATE.format(n=n)


def ensemble_opencl_source(
    n: int, device_type: str = "GPU", movable: bool = True
) -> str:
    return ENSEMBLE_OPENCL_SOURCE_TEMPLATE.format(
        n=n, device_type=device_type, mov="mov " if movable else ""
    )
