"""The paper's five evaluation applications (Section 7.1), each in
five functionally-equivalent variants — see :mod:`repro.apps.common`."""

from . import docrank, lud, mandelbrot, matmul, reduction  # noqa: F401
from .common import RunOutcome, checksum, merge_ledgers  # noqa: F401
