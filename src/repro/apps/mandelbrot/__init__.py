"""Mandelbrot set (paper Section 7.1, Figure 3b)."""

from .runners import (  # noqa: F401
    DEFAULT_H,
    DEFAULT_ITER,
    DEFAULT_W,
    run_actors,
    run_api,
    run_ensemble,
    run_ensemble_single,
    run_openacc,
    run_python,
    run_single_c,
)
from .sources import (  # noqa: F401
    KERNEL_SOURCE,
    OPENACC_SOURCE,
    SINGLE_C_SOURCE,
    ensemble_opencl_source,
    ensemble_single_source,
)
