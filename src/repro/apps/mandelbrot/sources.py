"""Mandelbrot set — all source variants (paper Section 7.1, Figure 3b).

The paper computes a 1000-iteration Mandelbrot set in a single kernel.
The viewport is the classic (-2..1) x (-1.5..1.5) window; the output is
the per-pixel iteration count.  Escape-time variance across pixels makes
this the divergence-sensitive workload where the OpenACC 1-D
decomposition loses badly to the hand-written 2-D kernel (Section 7.4).
"""

KERNEL_SOURCE = """
__kernel void mandelbrot(__global int *out, int w, int h, int max_iter) {
    int px = get_global_id(0);
    int py = get_global_id(1);
    float x0 = -2.0 + 3.0 * (float)px / (float)w;
    float y0 = -1.5 + 3.0 * (float)py / (float)h;
    float x = 0.0;
    float y = 0.0;
    int iter = 0;
    while (x * x + y * y <= 4.0 && iter < max_iter) {
        float tmp = x * x - y * y + x0;
        y = 2.0 * x * y + y0;
        x = tmp;
        iter++;
    }
    out[py * w + px] = iter;
}
"""

SINGLE_C_SOURCE = """
void mandelbrot(__global int *out, int w, int h, int max_iter) {
    for (int py = 0; py < h; py++) {
        for (int px = 0; px < w; px++) {
            float x0 = -2.0 + 3.0 * (float)px / (float)w;
            float y0 = -1.5 + 3.0 * (float)py / (float)h;
            float x = 0.0;
            float y = 0.0;
            int iter = 0;
            while (x * x + y * y <= 4.0 && iter < max_iter) {
                float tmp = x * x - y * y + x0;
                y = 2.0 * x * y + y0;
                x = tmp;
                iter++;
            }
            out[py * w + px] = iter;
        }
    }
}

int run(__global int *out, int w, int h, int max_iter) {
    mandelbrot(out, w, h, max_iter);
    int check = 0;
    for (int i = 0; i < w * h; i++) {
        check += (i % 97 + 1) * out[i];
    }
    return check;
}
"""

OPENACC_SOURCE = """
void mandelbrot(__global int *out, int w, int h, int max_iter) {
    #pragma acc parallel loop collapse(2) copyout(out[0:w*h]) gang worker vector
    for (int py = 0; py < h; py++) {
        for (int px = 0; px < w; px++) {
            float x0 = -2.0 + 3.0 * (float)px / (float)w;
            float y0 = -1.5 + 3.0 * (float)py / (float)h;
            float x = 0.0;
            float y = 0.0;
            int iter = 0;
            while (x * x + y * y <= 4.0 && iter < max_iter) {
                float tmp = x * x - y * y + x0;
                y = 2.0 * x * y + y0;
                x = tmp;
                iter++;
            }
            out[py * w + px] = iter;
        }
    }
}

int run(__global int *out, int w, int h, int max_iter) {
    mandelbrot(out, w, h, max_iter);
    int check = 0;
    for (int i = 0; i < w * h; i++) {
        check += (i % 97 + 1) * out[i];
    }
    return check;
}
"""

ENSEMBLE_SINGLE_SOURCE_TEMPLATE = """
type data_t is struct (
    integer [][] counts;
    integer maxiter
)
type dispatchI is interface (
  out data_t dout;
  in data_t din
)
type mandelI is interface(
  in data_t input;
  out data_t output
)

stage home {{
  actor Mandelbrot presents mandelI {{
    constructor() {{}}
    behaviour {{
      receive d from input;
      h = length(d.counts);
      w = length(d.counts[0]);
      for py = 0 .. h - 1 do {{
        for px = 0 .. w - 1 do {{
          x0 = 0.0 - 2.0 + 3.0 * intToReal(px) / intToReal(w);
          y0 = 0.0 - 1.5 + 3.0 * intToReal(py) / intToReal(h);
          x = 0.0;
          y = 0.0;
          iter = 0;
          while x * x + y * y <= 4.0 and iter < d.maxiter do {{
            tmp = x * x - y * y + x0;
            y := 2.0 * x * y + y0;
            x := tmp;
            iter := iter + 1;
          }}
          d.counts[py][px] := iter;
        }}
      }}
      send d on output;
    }}
  }}

  actor Dispatch presents dispatchI {{
    constructor() {{}}
    behaviour {{
      w = {w};
      h = {h};
      counts = new integer[h][w] of 0;
      d = new data_t(counts, {max_iter});
      send d on dout;
      receive result from din;
      check = checksumWeighted(result.counts);
      printString("checksum=");
      printInt(check);
      stop;
    }}
  }}

  boot {{
    d = new Dispatch();
    m = new Mandelbrot();
    connect d.dout to m.input;
    connect m.output to d.din;
  }}
}}
"""

ENSEMBLE_OPENCL_SOURCE_TEMPLATE = """
type data_t is struct (
    integer [][] counts;
    integer maxiter
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output
)
type dispatchI is interface (
  out settings_t requests;
  out data_t dout;
  in data_t din
)
type mandelI is interface(
  in settings_t requests
)

stage home {{
  opencl <device_index=0, device_type={device_type}>
  actor Mandelbrot presents mandelI {{
    constructor() {{}}
    behaviour {{
      receive req from requests;
      receive d from req.input;
      px = get_global_id(0);
      py = get_global_id(1);
      w = get_global_size(0);
      h = get_global_size(1);
      x0 = 0.0 - 2.0 + 3.0 * intToReal(px) / intToReal(w);
      y0 = 0.0 - 1.5 + 3.0 * intToReal(py) / intToReal(h);
      x = 0.0;
      y = 0.0;
      iter = 0;
      while x * x + y * y <= 4.0 and iter < d.maxiter do {{
        tmp = x * x - y * y + x0;
        y := 2.0 * x * y + y0;
        x := tmp;
        iter := iter + 1;
      }}
      d.counts[py][px] := iter;
      send d on req.output;
    }}
  }}

  actor Dispatch presents dispatchI {{
    constructor() {{}}
    behaviour {{
      w = {w};
      h = {h};
      ws = new integer[2] of 0;
      ws[0] := w;
      ws[1] := h;
      gs = new integer[2] of {groupsize};
      i = new in data_t;
      o = new out data_t;

      connect dout to i;
      connect o to din;

      config = new settings_t(ws, gs, i, o);
      counts = new integer[h][w] of 0;
      d = new data_t(counts, {max_iter});
      send config on requests;
      send d on dout;
      receive result from din;
      check = checksumWeighted(result.counts);
      printString("checksum=");
      printInt(check);
      stop;
    }}
  }}

  boot {{
    d = new Dispatch();
    m = new Mandelbrot();
    connect d.requests to m.requests;
  }}
}}
"""


def ensemble_single_source(w: int, h: int, max_iter: int) -> str:
    return ENSEMBLE_SINGLE_SOURCE_TEMPLATE.format(w=w, h=h, max_iter=max_iter)


def ensemble_opencl_source(
    w: int,
    h: int,
    max_iter: int,
    device_type: str = "GPU",
    groupsize: int = 8,
) -> str:
    if w % groupsize or h % groupsize:
        groupsize = 0
    return ENSEMBLE_OPENCL_SOURCE_TEMPLATE.format(
        w=w, h=h, max_iter=max_iter, device_type=device_type,
        groupsize=groupsize,
    )
