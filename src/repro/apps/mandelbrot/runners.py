"""Mandelbrot — the five runnable variants."""

from __future__ import annotations

from ...actors import ManagedArray, run_kernel
from ...opencl.api import (
    CL_MEM_WRITE_ONLY,
    clBuildProgram,
    clCreateBuffer,
    clCreateCommandQueue,
    clCreateContext,
    clCreateKernel,
    clCreateProgramWithSource,
    clEnqueueNDRangeKernel,
    clEnqueueReadBuffer,
    clFinish,
    clGetDeviceIDs,
    clGetPlatformIDs,
    clReleaseCommandQueue,
    clReleaseContext,
    clReleaseKernel,
    clReleaseMemObject,
    clReleaseProgram,
    clSetKernelArg,
)
from ...openacc.runtime import AccProgram
from ..common import (
    RunOutcome,
    collect_runtime_ledger,
    merge_ledgers,
    reset_runtime_ledgers,
    run_host_c,
)
from .sources import (
    KERNEL_SOURCE,
    OPENACC_SOURCE,
    SINGLE_C_SOURCE,
    ensemble_opencl_source,
    ensemble_single_source,
)

DEFAULT_W = 48
DEFAULT_H = 48
DEFAULT_ITER = 100


try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional dep
    _np = None


def _checksum_int(counts: list[int]) -> int:
    if _np is not None and len(counts) >= 4096:
        values = _np.asarray(counts, dtype=_np.int64)
        weights = _np.arange(len(counts), dtype=_np.int64) % 97 + 1
        return int(values.dot(weights))
    return sum((i % 97 + 1) * int(v) for i, v in enumerate(counts))


def run_python(
    w: int = DEFAULT_W, h: int = DEFAULT_H, max_iter: int = DEFAULT_ITER
) -> RunOutcome:
    counts = [0] * (w * h)
    for py in range(h):
        for px in range(w):
            x0 = -2.0 + 3.0 * px / w
            y0 = -1.5 + 3.0 * py / h
            x = 0.0
            y = 0.0
            iters = 0
            while x * x + y * y <= 4.0 and iters < max_iter:
                x, y = x * x - y * y + x0, 2.0 * x * y + y0
                iters += 1
            counts[py * w + px] = iters
    return RunOutcome(_checksum_int(counts), {}, meta={"counts": counts})


def run_single_c(
    w: int = DEFAULT_W, h: int = DEFAULT_H, max_iter: int = DEFAULT_ITER
) -> RunOutcome:
    counts = [0] * (w * h)
    value, host_ns = run_host_c(SINGLE_C_SOURCE, "run", [counts, w, h, max_iter])
    return RunOutcome(
        value,
        {"to_device": 0.0, "from_device": 0.0, "kernel": 0.0,
         "overhead": host_ns},
        meta={"counts": counts},
    )


def run_api(
    w: int = DEFAULT_W,
    h: int = DEFAULT_H,
    max_iter: int = DEFAULT_ITER,
    device_type: str = "GPU",
) -> RunOutcome:
    platforms = clGetPlatformIDs()
    device = clGetDeviceIDs(platforms[0], device_type)[0]
    context = clCreateContext([device])
    queue = clCreateCommandQueue(context, device)
    program = clCreateProgramWithSource(context, KERNEL_SOURCE)
    clBuildProgram(program)
    kernel = clCreateKernel(program, "mandelbrot")

    counts = [0] * (w * h)
    buf = clCreateBuffer(context, [CL_MEM_WRITE_ONLY], w * h, "int")
    clSetKernelArg(kernel, 0, buf)
    clSetKernelArg(kernel, 1, w)
    clSetKernelArg(kernel, 2, h)
    clSetKernelArg(kernel, 3, max_iter)
    local = [8, 8] if w % 8 == 0 and h % 8 == 0 else None
    clEnqueueNDRangeKernel(queue, kernel, 2, [w, h], local)
    clEnqueueReadBuffer(queue, buf, True, counts)
    clFinish(queue)

    clReleaseMemObject(buf)
    clReleaseKernel(kernel)
    clReleaseProgram(program)
    clReleaseCommandQueue(queue)
    ledger = context.ledger
    clReleaseContext(context)
    return RunOutcome(
        _checksum_int(counts), merge_ledgers(ledger), meta={"counts": counts}
    )


def run_actors(
    w: int = DEFAULT_W,
    h: int = DEFAULT_H,
    max_iter: int = DEFAULT_ITER,
    device_type: str = "GPU",
    movable: bool = True,
) -> RunOutcome:
    data = {
        "out": ManagedArray.zeros(w * h, "int"),
        "w": w,
        "h": h,
        "max_iter": max_iter,
    }
    reset_runtime_ledgers()
    result = run_kernel(
        KERNEL_SOURCE,
        "mandelbrot",
        data,
        worksize=[w, h],
        groupsize=[8, 8] if w % 8 == 0 and h % 8 == 0 else None,
        device_type=device_type,
        movable=movable,
    )
    counts = result["out"].host()
    return RunOutcome(
        _checksum_int(counts),
        merge_ledgers(collect_runtime_ledger()),
        meta={"counts": counts},
    )


def run_ensemble(
    w: int = DEFAULT_W,
    h: int = DEFAULT_H,
    max_iter: int = DEFAULT_ITER,
    device_type: str = "GPU",
) -> RunOutcome:
    from ... import ensemble
    from ...runtime.vm import EnsembleVM

    compiled = ensemble.compile_source(
        ensemble_opencl_source(w, h, max_iter, device_type)
    )
    reset_runtime_ledgers()
    vm = EnsembleVM(compiled)
    vm.run(300.0)
    value = _parse_int_checksum(vm.output)
    return RunOutcome(
        value, merge_ledgers(collect_runtime_ledger(), vm.ledger)
    )


def run_ensemble_single(
    w: int = DEFAULT_W, h: int = DEFAULT_H, max_iter: int = DEFAULT_ITER
) -> RunOutcome:
    from ... import ensemble
    from ...runtime.vm import EnsembleVM

    compiled = ensemble.compile_source(
        ensemble_single_source(w, h, max_iter)
    )
    vm = EnsembleVM(compiled)
    vm.run(300.0)
    value = _parse_int_checksum(vm.output)
    return RunOutcome(
        value,
        {"to_device": 0.0, "from_device": 0.0, "kernel": 0.0,
         "overhead": vm.ledger.host_ns},
    )


def run_openacc(
    w: int = DEFAULT_W,
    h: int = DEFAULT_H,
    max_iter: int = DEFAULT_ITER,
    device_type: str = "GPU",
) -> RunOutcome:
    program = AccProgram(OPENACC_SOURCE, device_type)
    counts = [0] * (w * h)
    result = program.run("run", [counts, w, h, max_iter])
    return RunOutcome(
        result.value, merge_ledgers(result.ledger), meta={"counts": counts}
    )


def _parse_int_checksum(output: list[str]) -> int:
    for i, line in enumerate(output):
        if line.startswith("checksum="):
            return int(output[i + 1])
    raise AssertionError(f"no checksum in program output: {output!r}")
