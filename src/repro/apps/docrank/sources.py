"""Document ranking — all source variants (Section 7.1, Figure 3e).

The paper's real-world application: a template of term weights
classifies a set of documents into wanted/unwanted.  The paper used a
private corpus; this reproduction synthesises one from a closed form so
every variant sees identical data (see DESIGN.md substitution table)::

    tf[d][t]  = (d*31 + t*17) % 13 == 0 ? (d + t) % 7 + 1 : 0
    w[t]      = ((t % 5) - 2) * 0.5

Paper-relevant structure preserved in the kernels:

* the **Ensemble** kernel initialises its two scratch arrays in two
  separate loops (the language has no NULL values, so ``new ... of``
  always initialises) and needs if/else where C uses a ternary (no
  int/bool overloading) — both effects the paper blames for the larger
  Ensemble kernel segment in Figure 3e;
* the **C** kernel combines the two initialisation loops into one and
  uses the ternary, "effectively halving the amount of work";
* the kernel runs ``repeats`` times per application run with unchanged
  data: Ensemble's movability keeps the corpus on the device the whole
  time, whereas the C host re-copies it per run — the paper's
  unexpected movability win;
* the **OpenACC** source scores documents through a helper function,
  which the pragma compiler refuses to offload (the PGI compiler "was
  not able to compile this code"); the **OpenMP** twin compiles on the
  CPU path, as gcc did in the paper.
"""

KERNEL_SOURCE = """
__kernel void rank(__global int *tf, __global float *w,
                   __global int *wanted, int v, float threshold) {
    int d = get_global_id(0);
    float pos[v];
    float neg[v];
    for (int t = 0; t < v; t++) {
        pos[t] = 0.0;
        neg[t] = 0.0;
    }
    for (int t = 0; t < v; t++) {
        float c = (float)tf[d * v + t] * w[t];
        if (c > 0.0) {
            pos[t] = c;
        } else {
            neg[t] = c;
        }
    }
    float score = 0.0;
    for (int t = 0; t < v; t++) {
        score += pos[t] + neg[t];
    }
    wanted[d] = score > threshold ? 1 : 0;
}
"""

SINGLE_C_SOURCE = """
void generate(__global int *tf, __global float *w, int ndocs, int v) {
    for (int d = 0; d < ndocs; d++) {
        for (int t = 0; t < v; t++) {
            if ((d * 31 + t * 17) % 13 == 0) {
                tf[d * v + t] = (d + t) % 7 + 1;
            } else {
                tf[d * v + t] = 0;
            }
        }
    }
    for (int t = 0; t < v; t++) {
        w[t] = (float)(t % 5 - 2) * 0.5;
    }
}

void rank_all(__global int *tf, __global float *w, __global int *wanted,
              int ndocs, int v, float threshold) {
    for (int d = 0; d < ndocs; d++) {
        float score = 0.0;
        for (int t = 0; t < v; t++) {
            score += (float)tf[d * v + t] * w[t];
        }
        wanted[d] = score > threshold ? 1 : 0;
    }
}

int run(__global int *wanted, int ndocs, int v, int repeats) {
    int tf[ndocs * v];
    float w[v];
    generate(tf, w, ndocs, v);
    for (int r = 0; r < repeats; r++) {
        rank_all(tf, w, wanted, ndocs, v, 0.0);
    }
    int check = 0;
    for (int d = 0; d < ndocs; d++) {
        check += (d % 97 + 1) * wanted[d];
    }
    return check;
}
"""

_ACC_BODY = """
void generate(__global int *tf, __global float *w, int ndocs, int v) {{
    for (int d = 0; d < ndocs; d++) {{
        for (int t = 0; t < v; t++) {{
            if ((d * 31 + t * 17) % 13 == 0) {{
                tf[d * v + t] = (d + t) % 7 + 1;
            }} else {{
                tf[d * v + t] = 0;
            }}
        }}
    }}
    for (int t = 0; t < v; t++) {{
        w[t] = (float)(t % 5 - 2) * 0.5;
    }}
}}

float doc_score(__global int *tf, __global float *w, int d, int v) {{
    float score = 0.0;
    for (int t = 0; t < v; t++) {{
        score += (float)tf[d * v + t] * w[t];
    }}
    return score;
}}

void rank_all(__global int *tf, __global float *w, __global int *wanted,
              int ndocs, int v, float threshold) {{
    {pragma}
    for (int d = 0; d < ndocs; d++) {{
        float s = doc_score(tf, w, d, v);
        wanted[d] = s > threshold ? 1 : 0;
    }}
}}

int run(__global int *wanted, int ndocs, int v, int repeats) {{
    int tf[ndocs * v];
    float w[v];
    generate(tf, w, ndocs, v);
    for (int r = 0; r < repeats; r++) {{
        rank_all(tf, w, wanted, ndocs, v, 0.0);
    }}
    int check = 0;
    for (int d = 0; d < ndocs; d++) {{
        check += (d % 97 + 1) * wanted[d];
    }}
    return check;
}}
"""

OPENACC_SOURCE = _ACC_BODY.format(
    pragma="#pragma acc parallel loop copyin(tf, w) copyout(wanted) "
    "gang vector"
)

OPENMP_SOURCE = _ACC_BODY.format(
    pragma="#pragma omp parallel for"
)

ENSEMBLE_SINGLE_SOURCE_TEMPLATE = """
type data_t is struct (
    integer [][] tf;
    real [] w;
    integer [] wanted;
    real threshold
)
type dispatchI is interface (
  out data_t dout;
  in data_t din
)
type rankI is interface(
  in data_t input;
  out data_t output
)

stage home {{
  actor Rank presents rankI {{
    constructor() {{}}
    behaviour {{
      receive d from input;
      ndocs = length(d.tf);
      v = length(d.w);
      for doc = 0 .. ndocs - 1 do {{
        score = 0.0;
        for t = 0 .. v - 1 do {{
          score := score + intToReal(d.tf[doc][t]) * d.w[t];
        }}
        if score > d.threshold then {{
          d.wanted[doc] := 1;
        }} else {{
          d.wanted[doc] := 0;
        }}
      }}
      send d on output;
    }}
  }}

  actor Dispatch presents dispatchI {{
    constructor() {{}}
    behaviour {{
      ndocs = {ndocs};
      v = {v};
      repeats = {repeats};
      tf = new integer[ndocs][v] of 0;
      w = new real[v] of 0.0;
      wanted = new integer[ndocs] of 0;
      fillPatternCond2D(tf, 31, 17, 13, 1, 1, 7, 1);
      fillPattern1D(w, 1, 0, 5, -2, 2.0);
      d = new data_t(tf, w, wanted, 0.0);
      for r = 1 .. repeats do {{
        send d on dout;
        receive d from din;
      }}
      check = checksumWeighted(d.wanted);
      printString("checksum=");
      printInt(check);
      stop;
    }}
  }}

  boot {{
    d = new Dispatch();
    r = new Rank();
    connect d.dout to r.input;
    connect r.output to d.din;
  }}
}}
"""

ENSEMBLE_OPENCL_SOURCE_TEMPLATE = """
type data_t is struct (
    integer [][] tf;
    real [] w;
    integer [] wanted;
    real threshold
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in mov data_t input;
    out mov data_t output
)
type dispatchI is interface (
  out settings_t requests;
  out mov data_t dout;
  in mov data_t din
)
type rankI is interface(
  in settings_t requests
)

stage home {{
  opencl <device_index=0, device_type={device_type}>
  actor Rank presents rankI {{
    constructor() {{}}
    behaviour {{
      receive req from requests;
      receive d from req.input;
      doc = get_global_id(0);
      v = {v};
      pos = new real[v] of 0.0;
      neg = new real[v] of 0.0;
      for t = 0 .. v - 1 do {{
        c = intToReal(d.tf[doc][t]) * d.w[t];
        if c > 0.0 then {{
          pos[t] := c;
        }} else {{
          neg[t] := c;
        }}
      }}
      score = 0.0;
      for t = 0 .. v - 1 do {{
        score := score + pos[t] + neg[t];
      }}
      if score > d.threshold then {{
        d.wanted[doc] := 1;
      }} else {{
        d.wanted[doc] := 0;
      }}
      send d on req.output;
    }}
  }}

  actor Dispatch presents dispatchI {{
    constructor() {{}}
    behaviour {{
      ndocs = {ndocs};
      v = {v};
      repeats = {repeats};
      ws = new integer[1] of ndocs;
      gs = new integer[1] of 0;
      i = new in mov data_t;
      o = new out mov data_t;

      connect dout to i;
      connect o to din;

      config = new settings_t(ws, gs, i, o);
      tf = new integer[ndocs][v] of 0;
      w = new real[v] of 0.0;
      wanted = new integer[ndocs] of 0;
      fillPatternCond2D(tf, 31, 17, 13, 1, 1, 7, 1);
      fillPattern1D(w, 1, 0, 5, -2, 2.0);
      d = new data_t(tf, w, wanted, 0.0);
      for r = 1 .. repeats do {{
        send config on requests;
        send d on dout;
        receive d from din;
      }}
      check = checksumWeighted(d.wanted);
      printString("checksum=");
      printInt(check);
      stop;
    }}
  }}

  boot {{
    d = new Dispatch();
    r = new Rank();
    connect d.requests to r.requests;
  }}
}}
"""


def ensemble_single_source(ndocs: int, v: int, repeats: int) -> str:
    return ENSEMBLE_SINGLE_SOURCE_TEMPLATE.format(
        ndocs=ndocs, v=v, repeats=repeats
    )


def ensemble_opencl_source(
    ndocs: int, v: int, repeats: int, device_type: str = "GPU"
) -> str:
    return ENSEMBLE_OPENCL_SOURCE_TEMPLATE.format(
        ndocs=ndocs, v=v, repeats=repeats, device_type=device_type
    )
