"""Document ranking — the five runnable variants."""

from __future__ import annotations

from ...actors import (
    Actor,
    InPort,
    KernelActor,
    KernelRequest,
    ManagedArray,
    OutPort,
    Stage,
    connect,
    mov,
)
from ...opencl.api import (
    CL_MEM_READ_ONLY,
    CL_MEM_WRITE_ONLY,
    clBuildProgram,
    clCreateBuffer,
    clCreateCommandQueue,
    clCreateContext,
    clCreateKernel,
    clCreateProgramWithSource,
    clEnqueueNDRangeKernel,
    clEnqueueReadBuffer,
    clEnqueueWriteBuffer,
    clFinish,
    clGetDeviceIDs,
    clGetPlatformIDs,
    clReleaseCommandQueue,
    clReleaseContext,
    clReleaseKernel,
    clReleaseMemObject,
    clReleaseProgram,
    clSetKernelArg,
)
from ...openacc.runtime import AccProgram
from ..common import (
    RunOutcome,
    collect_runtime_ledger,
    merge_ledgers,
    reset_runtime_ledgers,
    run_host_c,
)
from .sources import (
    KERNEL_SOURCE,
    OPENACC_SOURCE,
    OPENMP_SOURCE,
    SINGLE_C_SOURCE,
    ensemble_opencl_source,
    ensemble_single_source,
)

DEFAULT_DOCS = 128
DEFAULT_TERMS = 48
DEFAULT_REPEATS = 8


def generate(ndocs: int, v: int) -> tuple[list[int], list[float]]:
    tf = [
        (d + t) % 7 + 1 if (d * 31 + t * 17) % 13 == 0 else 0
        for d in range(ndocs)
        for t in range(v)
    ]
    w = [float(t % 5 - 2) * 0.5 for t in range(v)]
    return tf, w


def _checksum(wanted: list[int]) -> int:
    return sum((d % 97 + 1) * int(x) for d, x in enumerate(wanted))


def run_python(
    ndocs: int = DEFAULT_DOCS,
    v: int = DEFAULT_TERMS,
    repeats: int = DEFAULT_REPEATS,
) -> RunOutcome:
    tf, w = generate(ndocs, v)
    wanted = [0] * ndocs
    for _ in range(repeats):
        for d in range(ndocs):
            score = 0.0
            for t in range(v):
                score += tf[d * v + t] * w[t]
            wanted[d] = 1 if score > 0.0 else 0
    return RunOutcome(_checksum(wanted), {}, meta={"wanted": wanted})


def run_single_c(
    ndocs: int = DEFAULT_DOCS,
    v: int = DEFAULT_TERMS,
    repeats: int = DEFAULT_REPEATS,
) -> RunOutcome:
    wanted = [0] * ndocs
    value, host_ns = run_host_c(
        SINGLE_C_SOURCE, "run", [wanted, ndocs, v, repeats]
    )
    return RunOutcome(
        value,
        {"to_device": 0.0, "from_device": 0.0, "kernel": 0.0,
         "overhead": host_ns},
    )


def run_api(
    ndocs: int = DEFAULT_DOCS,
    v: int = DEFAULT_TERMS,
    repeats: int = DEFAULT_REPEATS,
    device_type: str = "GPU",
) -> RunOutcome:
    """The C host re-copies the corpus in and the flags out on every
    repeat — the paper's observation about the C version."""
    platforms = clGetPlatformIDs()
    device = clGetDeviceIDs(platforms[0], device_type)[0]
    context = clCreateContext([device])
    queue = clCreateCommandQueue(context, device)
    program = clCreateProgramWithSource(context, KERNEL_SOURCE)
    clBuildProgram(program)
    kernel = clCreateKernel(program, "rank")

    tf, w = generate(ndocs, v)
    wanted = [0] * ndocs
    buf_tf = clCreateBuffer(context, [CL_MEM_READ_ONLY], ndocs * v, "int")
    buf_w = clCreateBuffer(context, [CL_MEM_READ_ONLY], v, "float")
    buf_out = clCreateBuffer(context, [CL_MEM_WRITE_ONLY], ndocs, "int")
    for _ in range(repeats):
        clEnqueueWriteBuffer(queue, buf_tf, True, tf)
        clEnqueueWriteBuffer(queue, buf_w, True, w)
        clSetKernelArg(kernel, 0, buf_tf)
        clSetKernelArg(kernel, 1, buf_w)
        clSetKernelArg(kernel, 2, buf_out)
        clSetKernelArg(kernel, 3, v)
        clSetKernelArg(kernel, 4, 0.0)
        clEnqueueNDRangeKernel(queue, kernel, 1, [ndocs], None)
        clEnqueueReadBuffer(queue, buf_out, True, wanted)
    clFinish(queue)

    clReleaseMemObject(buf_tf)
    clReleaseMemObject(buf_w)
    clReleaseMemObject(buf_out)
    clReleaseKernel(kernel)
    clReleaseProgram(program)
    clReleaseCommandQueue(queue)
    ledger = context.ledger
    clReleaseContext(context)
    return RunOutcome(_checksum(wanted), merge_ledgers(ledger))


class _RankHost(Actor):
    """Streams the movable corpus through the kernel actor R times."""

    requests = OutPort()
    din = InPort()

    def __init__(self, ndocs: int, v: int, repeats: int, movable: bool):
        super().__init__()
        self.ndocs = ndocs
        self.v = v
        self.repeats = repeats
        self.movable = movable
        self.wanted: list[int] | None = None

    def behaviour(self) -> None:
        tf, w = generate(self.ndocs, self.v)
        data = {
            "tf": ManagedArray(tf, (self.ndocs * self.v,), "int"),
            "w": ManagedArray(w, (self.v,)),
            "wanted": ManagedArray.zeros(self.ndocs, "int"),
            "v": self.v,
            "threshold": 0.0,
        }
        dout = OutPort(name="rank.dout")
        request = KernelRequest([self.ndocs], None)
        connect(dout, request.input)
        connect(request.output, self.din)
        for _ in range(self.repeats):
            self.requests.send(request)
            dout.send(mov(data) if self.movable else data)
            received = self.din.receive()
            data = received.value if self.movable else received
        self.wanted = [int(x) for x in data["wanted"].host()]
        self.stop()


def run_actors(
    ndocs: int = DEFAULT_DOCS,
    v: int = DEFAULT_TERMS,
    repeats: int = DEFAULT_REPEATS,
    device_type: str = "GPU",
    movable: bool = True,
) -> RunOutcome:
    reset_runtime_ledgers()
    stage = Stage("docrank")
    rank = stage.spawn(KernelActor(KERNEL_SOURCE, "rank", device_type))
    host = stage.spawn(_RankHost(ndocs, v, repeats, movable))
    connect(host.requests, rank.requests)
    stage.run(600.0)
    assert host.wanted is not None
    return RunOutcome(
        _checksum(host.wanted), merge_ledgers(collect_runtime_ledger())
    )


def run_ensemble(
    ndocs: int = DEFAULT_DOCS,
    v: int = DEFAULT_TERMS,
    repeats: int = DEFAULT_REPEATS,
    device_type: str = "GPU",
) -> RunOutcome:
    from ... import ensemble
    from ...runtime.vm import EnsembleVM

    compiled = ensemble.compile_source(
        ensemble_opencl_source(ndocs, v, repeats, device_type)
    )
    reset_runtime_ledgers()
    vm = EnsembleVM(compiled)
    vm.run(600.0)
    value = _parse_int_checksum(vm.output)
    return RunOutcome(
        value, merge_ledgers(collect_runtime_ledger(), vm.ledger)
    )


def run_ensemble_single(
    ndocs: int = DEFAULT_DOCS,
    v: int = DEFAULT_TERMS,
    repeats: int = DEFAULT_REPEATS,
) -> RunOutcome:
    from ... import ensemble
    from ...runtime.vm import EnsembleVM

    compiled = ensemble.compile_source(
        ensemble_single_source(ndocs, v, repeats)
    )
    vm = EnsembleVM(compiled)
    vm.run(600.0)
    value = _parse_int_checksum(vm.output)
    return RunOutcome(
        value,
        {"to_device": 0.0, "from_device": 0.0, "kernel": 0.0,
         "overhead": vm.ledger.host_ns},
    )


def run_openacc(
    ndocs: int = DEFAULT_DOCS,
    v: int = DEFAULT_TERMS,
    repeats: int = DEFAULT_REPEATS,
    device_type: str = "GPU",
) -> RunOutcome:
    """GPU: raises AccUnsupportedError (the paper's PGI failure).
    CPU: the OpenMP source compiles and runs (the paper's gcc path)."""
    if device_type == "GPU":
        program = AccProgram(OPENACC_SOURCE, device_type)  # raises
        raise AssertionError("unreachable: acc compile must fail")
    program = AccProgram(OPENMP_SOURCE, device_type, openmp=True)
    wanted = [0] * ndocs
    result = program.run("run", [wanted, ndocs, v, repeats])
    return RunOutcome(result.value, merge_ledgers(result.ledger))


def _parse_int_checksum(output: list[str]) -> int:
    for i, line in enumerate(output):
        if line.startswith("checksum="):
            return int(output[i + 1])
    raise AssertionError(f"no checksum in program output: {output!r}")
