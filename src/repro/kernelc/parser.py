"""Recursive-descent parser for kernel-C, building kernel IR directly.

The grammar is a C subset rich enough for OpenCL-style kernels and for
the single-threaded "C" application variants used by the complexity
metrics: functions, ``__kernel`` functions, scalar and array variables
with OpenCL address-space qualifiers, the usual statements and a full
C expression grammar (including the ternary operator, compound
assignment and ``++``/``--``).

Canonical ``for`` loops (``for (int i = a; i < b; i++)``) lower to
:class:`~repro.kir.ir.For`; non-canonical ones lower to an init
statement plus :class:`~repro.kir.ir.While`.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from .. import kir
from .lexer import Lexer, Token

_TYPE_KWS = ("int", "float", "bool", "void")
_SPACE_KWS = {
    "__global": kir.GLOBAL,
    "__local": kir.LOCAL,
    "__constant": kir.CONSTANT,
    "__private": kir.PRIVATE,
}
_ASSIGN_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}


class Parser:
    def __init__(self, source: str) -> None:
        lexer = Lexer(source)
        self.tokens = lexer.tokens
        self.directives = lexer.directives
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {tok.text or tok.kind!r}",
                tok.line,
                tok.column,
            )
        return self.next()

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, tok.line, tok.column)

    # -- module ------------------------------------------------------------

    def parse_module(self) -> kir.Module:
        module = kir.Module()
        while not self.at("eof"):
            module.add(self.parse_function())
        return module

    def parse_function(self) -> kir.Function:
        is_kernel = bool(self.accept("kw", "__kernel"))
        ret_tok = self.peek()
        if not (ret_tok.kind == "kw" and ret_tok.text in _TYPE_KWS):
            raise self.error("expected a return type")
        self.next()
        ret_type: object = (
            kir.VOID if ret_tok.text == "void" else kir.scalar(ret_tok.text)
        )
        if is_kernel and ret_type != kir.VOID:
            raise ParseError(
                "kernels must return void", ret_tok.line, ret_tok.column
            )
        name = self.expect("id").text
        self.expect("op", "(")
        params: list[kir.Param] = []
        if not self.at("op", ")"):
            params.append(self.parse_param())
            while self.accept("op", ","):
                params.append(self.parse_param())
        self.expect("op", ")")
        body = self.parse_block()
        return kir.Function(name, params, ret_type, body, is_kernel=is_kernel)

    def parse_param(self) -> kir.Param:
        space = None
        tok = self.peek()
        if tok.kind == "kw" and tok.text in _SPACE_KWS:
            space = _SPACE_KWS[tok.text]
            self.next()
        type_tok = self.peek()
        if not (type_tok.kind == "kw" and type_tok.text in _TYPE_KWS[:3]):
            raise self.error("expected a parameter type")
        self.next()
        elem = kir.scalar(type_tok.text)
        is_array = bool(self.accept("op", "*"))
        name = self.expect("id").text
        if self.accept("op", "["):
            self.expect("op", "]")
            is_array = True
        if is_array:
            return kir.Param(name, kir.ArrayType(elem, space or kir.GLOBAL))
        if space is not None:
            raise self.error("address-space qualifier on a scalar parameter")
        return kir.Param(name, elem)

    # -- statements --------------------------------------------------------

    def parse_block(self) -> list[kir.Stmt]:
        self.expect("op", "{")
        stmts: list[kir.Stmt] = []
        while not self.at("op", "}"):
            stmts.extend(self.parse_stmt())
        self.expect("op", "}")
        return stmts

    def parse_stmt_or_block(self) -> list[kir.Stmt]:
        if self.at("op", "{"):
            return self.parse_block()
        return self.parse_stmt()

    def parse_stmt(self) -> list[kir.Stmt]:
        tok = self.peek()
        stmts = self._parse_stmt_inner(tok)
        for st in stmts:
            if not hasattr(st, "line"):
                st.line = tok.line  # type: ignore[attr-defined]
        return stmts

    def _parse_stmt_inner(self, tok: Token) -> list[kir.Stmt]:
        if tok.kind == "kw":
            if tok.text in _SPACE_KWS or tok.text in _TYPE_KWS[:3]:
                return [self.parse_decl()]
            if tok.text == "if":
                return [self.parse_if()]
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "while":
                return [self.parse_while()]
            if tok.text == "break":
                self.next()
                self.expect("op", ";")
                return [kir.Break()]
            if tok.text == "continue":
                self.next()
                self.expect("op", ";")
                return [kir.Continue()]
            if tok.text == "return":
                self.next()
                value = None if self.at("op", ";") else self.parse_expr()
                self.expect("op", ";")
                return [kir.Return(value)]
            if tok.text == "barrier":
                self.next()
                self.expect("op", "(")
                # Accept any fence-flag identifier expression.
                while not self.at("op", ")"):
                    self.next()
                self.expect("op", ")")
                self.expect("op", ";")
                return [kir.Barrier()]
        stmt = self.parse_simple()
        self.expect("op", ";")
        return [stmt]

    def parse_decl(self) -> kir.Decl:
        space = None
        tok = self.peek()
        if tok.kind == "kw" and tok.text in _SPACE_KWS:
            space = _SPACE_KWS[tok.text]
            self.next()
        type_tok = self.peek()
        if not (type_tok.kind == "kw" and type_tok.text in _TYPE_KWS[:3]):
            raise self.error("expected a type in declaration")
        self.next()
        elem = kir.scalar(type_tok.text)
        name = self.expect("id").text
        if self.accept("op", "["):
            size = self.parse_expr()
            self.expect("op", "]")
            self.expect("op", ";")
            return kir.Decl(
                name, kir.ArrayType(elem, space or kir.PRIVATE), size=size
            )
        if space is not None and space != kir.PRIVATE:
            raise self.error("scalar declarations must be private")
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return kir.Decl(name, elem, init=init)

    def parse_if(self) -> kir.If:
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_stmt_or_block()
        orelse: list[kir.Stmt] = []
        if self.accept("kw", "else"):
            orelse = self.parse_stmt_or_block()
        return kir.If(cond, then, orelse)

    def parse_while(self) -> kir.While:
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt_or_block()
        return kir.While(cond, body)

    def parse_for(self) -> list[kir.Stmt]:
        self.expect("kw", "for")
        self.expect("op", "(")
        # init: declaration or simple statement (no trailing ';' consumed)
        init: Optional[kir.Stmt]
        declared_var: Optional[str] = None
        if self.at("kw", "int"):
            self.next()
            var = self.expect("id").text
            self.expect("op", "=")
            start = self.parse_expr()
            init = kir.Decl(var, kir.INT_T, init=start)
            declared_var = var
        elif self.at("op", ";"):
            init = None
        else:
            init = self.parse_simple()
        self.expect("op", ";")
        cond = None if self.at("op", ";") else self.parse_expr()
        self.expect("op", ";")
        update = None if self.at("op", ")") else self.parse_simple()
        self.expect("op", ")")
        body = self.parse_stmt_or_block()

        lowered = self._lower_canonical_for(
            init, declared_var, cond, update, body
        )
        if lowered is not None:
            return [lowered]
        # Fall back to init + while(cond) { body; update; }
        stmts: list[kir.Stmt] = []
        if init is not None:
            stmts.append(init)
        loop_body = list(body)
        if update is not None:
            loop_body.append(update)
        stmts.append(kir.While(cond if cond is not None else kir.Const(True),
                               loop_body))
        return stmts

    def _lower_canonical_for(
        self,
        init: Optional[kir.Stmt],
        declared_var: Optional[str],
        cond: Optional[kir.Expr],
        update: Optional[kir.Stmt],
        body: list[kir.Stmt],
    ) -> Optional[kir.For]:
        """Recognise ``for (int i = a; i <op> b; i += c)`` and build ir.For."""
        if cond is None or update is None:
            return None
        if declared_var is not None:
            var = declared_var
            assert isinstance(init, kir.Decl) and init.init is not None
            start = init.init
        elif isinstance(init, kir.Assign):
            var = init.name
            start = init.value
        else:
            return None
        if not (
            isinstance(cond, kir.BinOp)
            and cond.op in ("<", "<=", ">", ">=")
            and isinstance(cond.left, kir.Var)
            and cond.left.name == var
        ):
            return None
        if not (isinstance(update, kir.Assign) and update.name == var):
            return None
        step = _step_of(update.value, var)
        if step is None:
            return None
        if step.value > 0 and cond.op not in ("<", "<="):
            return None
        if step.value < 0 and cond.op not in (">", ">="):
            return None
        stop = cond.right
        if cond.op == "<=":
            stop = kir.BinOp("+", stop, kir.Const(1))
        elif cond.op == ">=":
            stop = kir.BinOp("-", stop, kir.Const(1))
        return kir.For(var, start, stop, step, body)

    def parse_simple(self) -> kir.Stmt:
        """An expression-statement: assignment, ++/--, or a bare call."""
        checkpoint = self.pos
        if self.at("id"):
            name = self.next().text
            if self.accept("op", "++"):
                return kir.Assign(
                    name, kir.BinOp("+", kir.Var(name), kir.Const(1))
                )
            if self.accept("op", "--"):
                return kir.Assign(
                    name, kir.BinOp("-", kir.Var(name), kir.Const(1))
                )
            if self.at("op", "=") and not self.at("op", "=="):
                self.next()
                return kir.Assign(name, self.parse_expr())
            op_tok = self.peek()
            if op_tok.kind == "op" and op_tok.text in _ASSIGN_OPS:
                self.next()
                rhs = self.parse_expr()
                return kir.Assign(
                    name, kir.BinOp(_ASSIGN_OPS[op_tok.text], kir.Var(name), rhs)
                )
            if self.at("op", "["):
                self.next()
                index = self.parse_expr()
                self.expect("op", "]")
                if self.accept("op", "="):
                    return kir.Store(kir.Var(name), index, self.parse_expr())
                op_tok = self.peek()
                if op_tok.kind == "op" and op_tok.text in _ASSIGN_OPS:
                    self.next()
                    rhs = self.parse_expr()
                    load = kir.Index(kir.Var(name), index)
                    return kir.Store(
                        kir.Var(name),
                        index,
                        kir.BinOp(_ASSIGN_OPS[op_tok.text], load, rhs),
                    )
                if self.accept("op", "++"):
                    load = kir.Index(kir.Var(name), index)
                    return kir.Store(
                        kir.Var(name), index,
                        kir.BinOp("+", load, kir.Const(1)),
                    )
            # Not an assignment after all: rewind and parse an expression.
            self.pos = checkpoint
        expr = self.parse_expr()
        return kir.ExprStmt(expr)

    # -- expressions (precedence climbing) -----------------------------

    def parse_expr(self) -> kir.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> kir.Expr:
        cond = self.parse_or()
        if self.accept("op", "?"):
            if_true = self.parse_expr()
            self.expect("op", ":")
            if_false = self.parse_ternary()
            return kir.Select(cond, if_true, if_false)
        return cond

    def _binop_level(self, ops: tuple[str, ...], next_level) -> kir.Expr:
        left = next_level()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.text in ops:
                self.next()
                right = next_level()
                left = kir.BinOp(tok.text, left, right)
            else:
                return left

    def parse_or(self) -> kir.Expr:
        return self._binop_level(("||",), self.parse_and)

    def parse_and(self) -> kir.Expr:
        return self._binop_level(("&&",), self.parse_bitor)

    def parse_bitor(self) -> kir.Expr:
        return self._binop_level(("|",), self.parse_bitxor)

    def parse_bitxor(self) -> kir.Expr:
        return self._binop_level(("^",), self.parse_bitand)

    def parse_bitand(self) -> kir.Expr:
        return self._binop_level(("&",), self.parse_equality)

    def parse_equality(self) -> kir.Expr:
        return self._binop_level(("==", "!="), self.parse_relational)

    def parse_relational(self) -> kir.Expr:
        return self._binop_level(("<", "<=", ">", ">="), self.parse_shift)

    def parse_shift(self) -> kir.Expr:
        return self._binop_level(("<<", ">>"), self.parse_add)

    def parse_add(self) -> kir.Expr:
        return self._binop_level(("+", "-"), self.parse_mul)

    def parse_mul(self) -> kir.Expr:
        return self._binop_level(("*", "/", "%"), self.parse_unary)

    def parse_unary(self) -> kir.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~"):
            self.next()
            return kir.UnOp(tok.text, self.parse_unary())
        if tok.kind == "op" and tok.text == "+":
            self.next()
            return self.parse_unary()
        return self.parse_cast()

    def parse_cast(self) -> kir.Expr:
        if (
            self.at("op", "(")
            and self.peek(1).kind == "kw"
            and self.peek(1).text in _TYPE_KWS[:3]
            and self.peek(2).kind == "op"
            and self.peek(2).text == ")"
        ):
            self.next()
            type_tok = self.next()
            self.next()
            operand = self.parse_unary()
            return kir.Cast(kir.scalar(type_tok.text), operand)
        return self.parse_postfix()

    def parse_postfix(self) -> kir.Expr:
        expr = self.parse_primary()
        while self.accept("op", "["):
            index = self.parse_expr()
            self.expect("op", "]")
            expr = kir.Index(expr, index)
        return expr

    def parse_primary(self) -> kir.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return kir.Const(int(tok.text))
        if tok.kind == "float":
            self.next()
            return kir.Const(float(tok.text))
        if tok.kind == "kw" and tok.text in ("true", "false"):
            self.next()
            return kir.Const(tok.text == "true")
        if tok.kind == "id":
            self.next()
            if self.accept("op", "("):
                args: list[kir.Expr] = []
                if not self.at("op", ")"):
                    args.append(self.parse_expr())
                    while self.accept("op", ","):
                        args.append(self.parse_expr())
                self.expect("op", ")")
                return kir.Call(tok.text, args)
            return kir.Var(tok.text)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {tok.text or tok.kind!r}")


def _step_of(value: kir.Expr, var: str) -> Optional[kir.Const]:
    """If *value* is ``var + c`` / ``var - c``, return the step constant."""
    if not isinstance(value, kir.BinOp):
        return None
    if not (isinstance(value.left, kir.Var) and value.left.name == var):
        return None
    if not isinstance(value.right, kir.Const):
        return None
    if value.op == "+":
        return kir.Const(value.right.value)
    if value.op == "-":
        return kir.Const(-value.right.value)
    return None


def parse(source: str) -> kir.Module:
    """Parse kernel-C *source* into an (untyped) kir module."""
    return Parser(source).parse_module()
