"""Type checker / annotator for kernel-C programs lowered to kir.

Fills in ``Expr.type`` on every expression, inserts explicit
:class:`~repro.kir.ir.Cast` nodes where C would convert implicitly
(int <-> float on assignment, argument passing and return), and rejects
genuinely ill-typed programs.  The annotated types drive the Python code
generator's choice of C-style integer division versus float division.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TypeCheckError
from .. import kir


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: dict[str, kir.Type] = {}

    def declare(self, name: str, typ: kir.Type) -> None:
        if name in self.names:
            raise TypeCheckError(f"redeclaration of {name!r}")
        self.names[name] = typ

    def lookup(self, name: str) -> kir.Type:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        raise TypeCheckError(f"undeclared variable {name!r}")


class TypeChecker:
    def __init__(self, module: kir.Module) -> None:
        self.module = module
        self.fn: Optional[kir.Function] = None

    def run(self) -> None:
        for fn in self.module.functions.values():
            self._check_function(fn)

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _numeric(t: kir.Type) -> bool:
        return isinstance(t, kir.ScalarType) and t.kind in (kir.INT, kir.FLOAT)

    def _coerce(self, expr: kir.Expr, want: kir.ScalarType) -> kir.Expr:
        """Return *expr* converted to *want*, inserting a Cast if needed."""
        have = expr.type
        if not isinstance(have, kir.ScalarType):
            raise TypeCheckError(f"expected a {want} value, got {have}")
        if have.kind == want.kind:
            return expr
        if {have.kind, want.kind} <= {kir.INT, kir.FLOAT}:
            cast = kir.Cast(want, expr)
            cast.type = want
            return cast
        raise TypeCheckError(f"cannot convert {have} to {want}")

    # -- functions ---------------------------------------------------------

    def _check_function(self, fn: kir.Function) -> None:
        self.fn = fn
        scope = _Scope()
        for p in fn.params:
            scope.declare(p.name, p.type)
        self._block(fn.body, scope)
        self.fn = None

    # -- statements --------------------------------------------------------

    def _block(self, stmts: list[kir.Stmt], scope: _Scope) -> None:
        for st in stmts:
            self._stmt(st, scope)

    def _stmt(self, st: kir.Stmt, scope: _Scope) -> None:
        assert self.fn is not None
        if isinstance(st, kir.Decl):
            if isinstance(st.type, kir.ArrayType):
                if st.size is not None:
                    st.size = self._expect_int(self._expr(st.size, scope))
            elif st.init is not None:
                st.init = self._coerce(self._expr(st.init, scope), st.type)
            scope.declare(st.name, st.type)
        elif isinstance(st, kir.Assign):
            target = scope.lookup(st.name)
            if isinstance(target, kir.ArrayType):
                raise TypeCheckError(f"cannot assign to array {st.name!r}")
            value = self._expr(st.value, scope)
            if target.kind == kir.BOOL:
                if not (isinstance(value.type, kir.ScalarType)
                        and value.type.kind == kir.BOOL):
                    raise TypeCheckError(
                        f"assigning non-bool to bool {st.name!r}"
                    )
                st.value = value
            else:
                st.value = self._coerce(value, target)
        elif isinstance(st, kir.Store):
            base = self._expr(st.base, scope)
            if not isinstance(base.type, kir.ArrayType):
                raise TypeCheckError("store into a non-array")
            st.base = base
            st.index = self._expect_int(self._expr(st.index, scope))
            value = self._expr(st.value, scope)
            elem = base.type.element
            if elem.kind == kir.BOOL:
                if not (isinstance(value.type, kir.ScalarType)
                        and value.type.kind == kir.BOOL):
                    raise TypeCheckError("storing non-bool into bool array")
                st.value = value
            else:
                st.value = self._coerce(value, elem)
        elif isinstance(st, kir.If):
            st.cond = self._condition(st.cond, scope)
            self._block(st.then, _Scope(scope))
            self._block(st.orelse, _Scope(scope))
        elif isinstance(st, kir.For):
            st.start = self._expect_int(self._expr(st.start, scope))
            st.stop = self._expect_int(self._expr(st.stop, scope))
            st.step = self._expect_int(self._expr(st.step, scope))
            inner = _Scope(scope)
            inner.declare(st.var, kir.INT_T)
            self._block(st.body, inner)
        elif isinstance(st, kir.While):
            st.cond = self._condition(st.cond, scope)
            self._block(st.body, _Scope(scope))
        elif isinstance(st, kir.Return):
            fn = self.fn
            if st.value is None:
                if fn.ret_type != kir.VOID and not fn.is_kernel:
                    raise TypeCheckError(
                        f"{fn.name}: return without value"
                    )
            else:
                if fn.ret_type == kir.VOID:
                    raise TypeCheckError(
                        f"{fn.name}: void function returns a value"
                    )
                value = self._expr(st.value, scope)
                assert isinstance(fn.ret_type, kir.ScalarType)
                st.value = self._coerce(value, fn.ret_type)
        elif isinstance(st, kir.ExprStmt):
            st.expr = self._expr(st.expr, scope)
        elif isinstance(st, (kir.Break, kir.Continue, kir.Barrier)):
            pass
        else:
            raise TypeCheckError(f"unknown statement {type(st).__name__}")

    def _condition(self, e: kir.Expr, scope: _Scope) -> kir.Expr:
        cond = self._expr(e, scope)
        if not isinstance(cond.type, kir.ScalarType):
            raise TypeCheckError("condition must be a scalar")
        return cond

    def _expect_int(self, e: kir.Expr) -> kir.Expr:
        if not (isinstance(e.type, kir.ScalarType) and e.type.kind == kir.INT):
            raise TypeCheckError(f"expected int, got {e.type}")
        return e

    # -- expressions -------------------------------------------------------

    def _expr(self, e: kir.Expr, scope: _Scope) -> kir.Expr:
        if isinstance(e, kir.Const):
            return e  # type set in __post_init__
        if isinstance(e, kir.Var):
            e.type = scope.lookup(e.name)
            return e
        if isinstance(e, kir.BinOp):
            return self._binop(e, scope)
        if isinstance(e, kir.UnOp):
            e.operand = self._expr(e.operand, scope)
            t = e.operand.type
            if e.op == "-":
                if not self._numeric(t):
                    raise TypeCheckError(f"negating non-numeric {t}")
                e.type = t
            elif e.op == "!":
                e.type = kir.BOOL_T
            else:  # ~
                if not (isinstance(t, kir.ScalarType) and t.kind == kir.INT):
                    raise TypeCheckError("~ requires an int operand")
                e.type = kir.INT_T
            return e
        if isinstance(e, kir.Index):
            e.base = self._expr(e.base, scope)
            if not isinstance(e.base.type, kir.ArrayType):
                raise TypeCheckError("indexing a non-array")
            e.index = self._expect_int(self._expr(e.index, scope))
            e.type = e.base.type.element
            return e
        if isinstance(e, kir.Cast):
            e.operand = self._expr(e.operand, scope)
            if not isinstance(e.operand.type, kir.ScalarType):
                raise TypeCheckError("cannot cast an array")
            e.type = e.target
            return e
        if isinstance(e, kir.Select):
            e.cond = self._condition(e.cond, scope)
            e.if_true = self._expr(e.if_true, scope)
            e.if_false = self._expr(e.if_false, scope)
            t, f = e.if_true.type, e.if_false.type
            if t == f:
                e.type = t
            elif self._numeric(t) and self._numeric(f):
                e.if_true = self._coerce(e.if_true, kir.FLOAT_T)
                e.if_false = self._coerce(e.if_false, kir.FLOAT_T)
                e.type = kir.FLOAT_T
            else:
                raise TypeCheckError("ternary branches have unrelated types")
            return e
        if isinstance(e, kir.Call):
            return self._call(e, scope)
        raise TypeCheckError(f"unknown expression {type(e).__name__}")

    def _binop(self, e: kir.BinOp, scope: _Scope) -> kir.Expr:
        e.left = self._expr(e.left, scope)
        e.right = self._expr(e.right, scope)
        lt, rt = e.left.type, e.right.type
        if e.op in kir.ARITH_OPS:
            if not (self._numeric(lt) and self._numeric(rt)):
                raise TypeCheckError(
                    f"operator {e.op!r} needs numeric operands, "
                    f"got {lt} and {rt}"
                )
            if kir.FLOAT in (lt.kind, rt.kind):  # type: ignore[union-attr]
                e.left = self._coerce(e.left, kir.FLOAT_T)
                e.right = self._coerce(e.right, kir.FLOAT_T)
                e.type = kir.FLOAT_T
            else:
                e.type = kir.INT_T
            return e
        if e.op in kir.COMPARE_OPS:
            if isinstance(lt, kir.ArrayType) or isinstance(rt, kir.ArrayType):
                raise TypeCheckError("cannot compare arrays")
            e.type = kir.BOOL_T
            return e
        if e.op in kir.LOGIC_OPS:
            e.type = kir.BOOL_T
            return e
        # bit ops
        for side in (lt, rt):
            if not (isinstance(side, kir.ScalarType) and side.kind == kir.INT):
                raise TypeCheckError(f"operator {e.op!r} needs int operands")
        e.type = kir.INT_T
        return e

    def _call(self, e: kir.Call, scope: _Scope) -> kir.Expr:
        assert self.fn is not None
        name = e.name
        e.args = [self._expr(a, scope) for a in e.args]
        if name in kir.WORKITEM_BUILTINS:
            if not self.fn.is_kernel:
                raise TypeCheckError(f"{name} used outside a kernel")
            for a in e.args:
                self._expect_int(a)
            e.type = kir.INT_T
            return e
        if name in kir.MATH_BUILTINS:
            arg_kinds, result = kir.MATH_BUILTINS[name]
            if len(e.args) != len(arg_kinds):
                raise TypeCheckError(
                    f"{name} expects {len(arg_kinds)} args, got {len(e.args)}"
                )
            for a in e.args:
                if not self._numeric(a.type):
                    raise TypeCheckError(f"{name}: non-numeric argument")
            if result == kir.FLOAT:
                e.args = [self._coerce(a, kir.FLOAT_T) for a in e.args]
                e.type = kir.FLOAT_T
            else:  # 'follow'
                kinds = {a.type.kind for a in e.args}  # type: ignore[union-attr]
                if kir.FLOAT in kinds:
                    e.args = [self._coerce(a, kir.FLOAT_T) for a in e.args]
                    e.type = kir.FLOAT_T
                else:
                    e.type = kir.INT_T
            return e
        target = self.module.functions.get(name)
        if target is None:
            raise TypeCheckError(f"call to unknown function {name!r}")
        if target.is_kernel:
            raise TypeCheckError(f"cannot call kernel {name!r} directly")
        if len(e.args) != len(target.params):
            raise TypeCheckError(
                f"{name} expects {len(target.params)} args, got {len(e.args)}"
            )
        new_args: list[kir.Expr] = []
        for a, p in zip(e.args, target.params):
            if isinstance(p.type, kir.ArrayType):
                if not isinstance(a.type, kir.ArrayType) or (
                    a.type.element != p.type.element
                ):
                    raise TypeCheckError(
                        f"{name}: argument for {p.name!r} must be "
                        f"a {p.type.element} array"
                    )
                new_args.append(a)
            else:
                new_args.append(self._coerce(a, p.type))
        e.args = new_args
        e.type = target.ret_type if target.ret_type != kir.VOID else None
        return e


def typecheck(module: kir.Module) -> kir.Module:
    """Annotate and verify *module* in place; returns it for chaining."""
    TypeChecker(module).run()
    return module
