"""Tokeniser for the kernel-C language (an OpenCL-C subset).

Preprocessor-style lines (``#pragma acc ...``) are not tokens: they are
collected into :attr:`Lexer.directives` with their line numbers so the
OpenACC front end can associate pragmas with the statement that follows,
while plain kernel-C consumers simply ignore them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LexError

KEYWORDS = frozenset(
    {
        "int",
        "float",
        "bool",
        "void",
        "if",
        "else",
        "for",
        "while",
        "break",
        "continue",
        "return",
        "true",
        "false",
        "__kernel",
        "__global",
        "__local",
        "__constant",
        "__private",
        "barrier",
    }
)

# Longest first so the scanner is greedy.
OPERATORS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "~",
    "&",
    "|",
    "^",
    "?",
    ":",
    ";",
    ",",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'id', 'int', 'float', 'kw', 'op', 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


@dataclass(frozen=True)
class Directive:
    """A ``#...`` line with the source line it occupies."""

    text: str
    line: int


class Lexer:
    """Single-pass scanner producing a token list plus directives."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens: list[Token] = []
        self.directives: list[Directive] = []
        self._scan()

    def _scan(self) -> None:
        src = self.source
        i = 0
        line = 1
        line_start = 0
        n = len(src)
        while i < n:
            ch = src[i]
            if ch == "\n":
                line += 1
                i += 1
                line_start = i
                continue
            if ch in " \t\r":
                i += 1
                continue
            col = i - line_start + 1
            if ch == "#":
                end = src.find("\n", i)
                if end == -1:
                    end = n
                self.directives.append(Directive(src[i:end].strip(), line))
                i = end
                continue
            if src.startswith("//", i):
                end = src.find("\n", i)
                i = n if end == -1 else end
                continue
            if src.startswith("/*", i):
                end = src.find("*/", i + 2)
                if end == -1:
                    raise LexError("unterminated block comment", line, col)
                line += src.count("\n", i, end)
                i = end + 2
                # line_start is stale after multi-line comments; recompute.
                nl = src.rfind("\n", 0, i)
                line_start = nl + 1 if nl != -1 else 0
                continue
            if ch.isdigit() or (ch == "." and i + 1 < n and src[i + 1].isdigit()):
                i = self._number(i, line, col)
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < n and (src[j].isalnum() or src[j] == "_"):
                    j += 1
                word = src[i:j]
                kind = "kw" if word in KEYWORDS else "id"
                self.tokens.append(Token(kind, word, line, col))
                i = j
                continue
            for op in OPERATORS:
                if src.startswith(op, i):
                    self.tokens.append(Token("op", op, line, col))
                    i += len(op)
                    break
            else:
                raise LexError(f"unexpected character {ch!r}", line, col)
        self.tokens.append(Token("eof", "", line, 1))

    def _number(self, i: int, line: int, col: int) -> int:
        src = self.source
        n = len(src)
        j = i
        is_float = False
        while j < n and src[j].isdigit():
            j += 1
        if j < n and src[j] == ".":
            is_float = True
            j += 1
            while j < n and src[j].isdigit():
                j += 1
        if j < n and src[j] in "eE":
            k = j + 1
            if k < n and src[k] in "+-":
                k += 1
            if k < n and src[k].isdigit():
                is_float = True
                j = k
                while j < n and src[j].isdigit():
                    j += 1
        if j < n and src[j] in "fF":
            is_float = True
            text = src[i:j]
            j += 1
        else:
            text = src[i:j]
        kind = "float" if is_float else "int"
        self.tokens.append(Token(kind, text, line, col))
        return j


def tokenize(source: str) -> list[Token]:
    """Tokenise *source*, discarding directives."""
    return Lexer(source).tokens
