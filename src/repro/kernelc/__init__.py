"""Kernel-C: the OpenCL-C-subset language of the repro stack.

Public entry points:

* :func:`compile_source` — parse + typecheck + validate kernel-C text
  into a kir module.
* :func:`build` — compile to an executable :class:`~repro.kir.CompiledModule`.
* :func:`run_host` — compile and call a host function (used by the
  single-threaded "C" application variants).
"""

from __future__ import annotations

from typing import Any, Sequence

from .. import kir
from .lexer import Directive, Lexer, Token, tokenize  # noqa: F401
from .parser import Parser, parse  # noqa: F401
from .typecheck import typecheck  # noqa: F401


def compile_source(source: str) -> kir.Module:
    """Compile kernel-C *source* to a validated, type-annotated kir module."""
    module = parse(source)
    typecheck(module)
    kir.validate(module)
    return module


def build(source: str) -> kir.CompiledModule:
    """Compile kernel-C *source* all the way to executable form."""
    return kir.compile_module(compile_source(source))


def run_host(
    source: str, function: str, args: Sequence[Any]
) -> tuple[Any, int]:
    """Compile *source* and call host *function*; returns (value, ops).

    Array arguments are passed as mutable Python lists, so callers see
    in-place writes — matching C pointer semantics.
    """
    return build(source).call(function, args)
