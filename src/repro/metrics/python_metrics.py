"""Complexity metrics for Python source (the API-approach host code)."""

from __future__ import annotations

import ast as pyast
import io
import tokenize

from .base import Metrics


def python_loc(source: str) -> int:
    """Logical LoC: lines carrying at least one real code token.

    Comments, blank lines and docstrings do not count.
    """
    doc_lines: set[int] = set()
    tree = pyast.parse(source)
    for node in pyast.walk(tree):
        if isinstance(
            node,
            (pyast.Module, pyast.FunctionDef, pyast.AsyncFunctionDef,
             pyast.ClassDef),
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], pyast.Expr)
                and isinstance(body[0].value, pyast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                doc = body[0]
                for line in range(doc.lineno, (doc.end_lineno or doc.lineno) + 1):
                    doc_lines.add(line)
    code_lines: set[int] = set()
    for tok in tokenize.generate_tokens(io.StringIO(source).readline):
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            if line not in doc_lines:
                code_lines.add(line)
    return len(code_lines)


def python_cyclomatic(source: str) -> int:
    """McCabe complexity of the whole artifact: 1 + decision points."""
    tree = pyast.parse(source)
    decisions = 0
    for node in pyast.walk(tree):
        if isinstance(
            node,
            (pyast.If, pyast.For, pyast.While, pyast.IfExp,
             pyast.ExceptHandler, pyast.Assert, pyast.AsyncFor),
        ):
            decisions += 1
        elif isinstance(node, pyast.BoolOp):
            decisions += len(node.values) - 1
        elif isinstance(node, pyast.comprehension):
            decisions += 1 + len(node.ifs)
        elif isinstance(node, (pyast.FunctionDef, pyast.AsyncFunctionDef)):
            decisions += 1
    return 1 + decisions


def python_abc(source: str) -> tuple[int, int, int]:
    """ABC components for Python: assignments, branches (calls),
    conditions (comparisons and boolean logic)."""
    tree = pyast.parse(source)
    a = b = c = 0
    for node in pyast.walk(tree):
        if isinstance(node, (pyast.Assign, pyast.AugAssign, pyast.AnnAssign)):
            a += 1
        elif isinstance(node, pyast.Call):
            b += 1
        elif isinstance(node, pyast.Compare):
            c += len(node.ops)
        elif isinstance(node, pyast.BoolOp):
            c += len(node.values) - 1
        elif isinstance(node, pyast.UnaryOp) and isinstance(
            node.op, pyast.Not
        ):
            c += 1
        elif isinstance(node, (pyast.If, pyast.While, pyast.IfExp)):
            c += 1
    return a, b, c


def analyze_python(source: str) -> Metrics:
    """Full metric vector for one Python artifact."""
    import textwrap

    source = textwrap.dedent(source)
    a, b, c = python_abc(source)
    return Metrics(
        loc=python_loc(source),
        cyclomatic=python_cyclomatic(source),
        assignments=a,
        branches=b,
        conditions=c,
    )
