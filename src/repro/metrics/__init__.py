"""Code-complexity metrics (paper Section 7.3, Table 1)."""

from .base import Metrics, MetricsDelta, text_loc  # noqa: F401
from .ensemble_metrics import analyze_ensemble  # noqa: F401
from .kernelc_metrics import analyze_kernelc  # noqa: F401
from .python_metrics import analyze_python  # noqa: F401
from .table1 import (  # noqa: F401
    APPLICATIONS,
    Table1Row,
    build_row,
    build_table1,
    render_table1,
)
