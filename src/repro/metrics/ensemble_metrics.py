"""Complexity metrics for Ensemble source."""

from __future__ import annotations

from ..ensemble import ast
from ..ensemble.parser import parse
from .base import Metrics, text_loc


def _walk_stmts(stmts: list[ast.Stmt]):
    for st in stmts:
        yield st
        if isinstance(st, ast.If):
            yield from _walk_stmts(st.then)
            yield from _walk_stmts(st.orelse)
        elif isinstance(st, (ast.For, ast.While)):
            yield from _walk_stmts(st.body)


def _walk_exprs(node):
    if isinstance(node, ast.Expr):
        yield node
        for attr in ("left", "right", "operand", "obj", "index", "cond",
                     "fill"):
            child = getattr(node, attr, None)
            if isinstance(child, ast.Expr):
                yield from _walk_exprs(child)
        for attr in ("args", "dims"):
            for child in getattr(node, attr, []) or []:
                yield from _walk_exprs(child)
        return
    for attr in ("value", "channel", "source", "target", "cond", "start",
                 "stop", "expr", "init"):
        child = getattr(node, attr, None)
        if isinstance(child, ast.Expr):
            yield from _walk_exprs(child)


class _Tally:
    def __init__(self) -> None:
        self.cyclomatic = 0
        self.a = 0
        self.b = 0
        self.c = 0

    def block(self, stmts: list[ast.Stmt]) -> None:
        """One behaviour / constructor / function / boot body."""
        self.cyclomatic += 1
        for st in _walk_stmts(stmts):
            if isinstance(st, (ast.If, ast.For, ast.While)):
                self.cyclomatic += 1
                self.c += 1
            if isinstance(st, (ast.Bind, ast.Assign, ast.Receive)):
                self.a += 1
            if isinstance(st, (ast.Send, ast.Connect)):
                self.b += 1
            for e in _walk_exprs(st):
                if isinstance(e, ast.CallE):
                    self.b += 1
                elif isinstance(
                    e, (ast.NewStruct, ast.NewActor, ast.NewChannel,
                        ast.NewArray)
                ):
                    self.b += 1
                elif isinstance(e, ast.BinOpE):
                    if e.op in ("and", "or"):
                        self.cyclomatic += 1
                        self.c += 1
                    elif e.op in ("==", "!=", "<", "<=", ">", ">="):
                        self.c += 1
                elif isinstance(e, ast.UnOpE) and e.op == "not":
                    self.c += 1


def analyze_ensemble(source: str) -> Metrics:
    """Full metric vector for one Ensemble artifact."""
    program = parse(source)
    tally = _Tally()
    for actor in program.stage.actors:
        for state in actor.state:
            tally.a += 1
        tally.block(actor.constructor_body)
        tally.block(actor.behaviour)
    for fn in program.stage.functions:
        tally.block(fn.body)
    tally.block(program.stage.boot)
    return Metrics(
        loc=text_loc(source),
        cyclomatic=tally.cyclomatic,
        assignments=tally.a,
        branches=tally.b,
        conditions=tally.c,
    )
