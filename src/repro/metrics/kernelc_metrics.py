"""Complexity metrics for kernel-C source (kernels, single-threaded C,
OpenACC-annotated C).

LoC is counted on the raw text (``#pragma`` lines count — annotations
are the pragma approach's cost); structural metrics walk the kir tree.
"""

from __future__ import annotations

from .. import kir
from ..kernelc.parser import parse
from .base import Metrics, text_loc


def _function_decisions(fn: kir.Function) -> int:
    decisions = 0
    for st in kir.walk_stmts(fn.body):
        if isinstance(st, (kir.If, kir.For, kir.While)):
            decisions += 1
        for e in kir.walk_exprs(st):
            if isinstance(e, kir.BinOp) and e.op in ("&&", "||"):
                decisions += 1
            elif isinstance(e, kir.Select):
                decisions += 1
    return decisions


def kir_metrics(module: kir.Module) -> tuple[int, int, int, int]:
    """(cyclomatic, assignments, branches, conditions) for a module."""
    cyclomatic = 0
    a = b = c = 0
    for fn in module.functions.values():
        cyclomatic += 1 + _function_decisions(fn)
        for st in kir.walk_stmts(fn.body):
            if isinstance(st, (kir.Assign, kir.Store)):
                a += 1
            elif isinstance(st, kir.Decl) and st.init is not None:
                a += 1
            if isinstance(st, (kir.If, kir.While, kir.For)):
                c += 1
            for e in kir.walk_exprs(st):
                if isinstance(e, kir.Call):
                    b += 1
                elif isinstance(e, kir.BinOp) and e.op in (
                    kir.COMPARE_OPS + kir.LOGIC_OPS
                ):
                    c += 1
                elif isinstance(e, kir.UnOp) and e.op == "!":
                    c += 1
                elif isinstance(e, kir.Select):
                    c += 1
    return cyclomatic, a, b, c


def analyze_kernelc(source: str) -> Metrics:
    """Full metric vector for one kernel-C artifact."""
    module = parse(source)
    cyclomatic, a, b, c = kir_metrics(module)
    return Metrics(
        loc=text_loc(source),
        cyclomatic=cyclomatic,
        assignments=a,
        branches=b,
        conditions=c,
    )
