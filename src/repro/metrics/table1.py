"""Table 1: difference between single-threaded and concurrent code,
per approach, for all five applications.

Approach-consistent comparisons (see DESIGN.md):

* **C (API approach)** — single-threaded Python function vs the verbose
  ``cl*`` host function plus the kernel-C source string.  (The paper
  wrote both in C; here the host language is Python, so both sides of
  the delta are Python and the shape — a large boilerplate cost — is
  preserved.)
* **Ensemble** — single-threaded Ensemble program vs the
  Ensemble-OpenCL program.
* **OpenACC** — plain kernel-C program vs the same program with
  ``#pragma`` annotations.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from ..apps import docrank, lud, mandelbrot, matmul, reduction
from .base import Metrics, MetricsDelta
from .ensemble_metrics import analyze_ensemble
from .kernelc_metrics import analyze_kernelc
from .python_metrics import analyze_python

APPLICATIONS = (
    "Matrix Multiplication",
    "Mandelbrot",
    "Reduction",
    "LUD",
    "Document Ranking",
)

_APP_MODULES = {
    "Matrix Multiplication": matmul,
    "Mandelbrot": mandelbrot,
    "Reduction": reduction,
    "LUD": lud,
    "Document Ranking": docrank,
}

# Representative sizes baked into generated Ensemble sources (metrics do
# not depend on the values, only on the code shape).
_ENSEMBLE_SOURCES = {
    "Matrix Multiplication": lambda m: (
        m.ensemble_single_source(64),
        m.ensemble_opencl_source(64),
    ),
    "Mandelbrot": lambda m: (
        m.ensemble_single_source(64, 64, 100),
        m.ensemble_opencl_source(64, 64, 100),
    ),
    "Reduction": lambda m: (
        m.ensemble_single_source(4096),
        m.ensemble_opencl_source(4096),
    ),
    "LUD": lambda m: (
        m.ensemble_single_source(64),
        m.ensemble_opencl_source(64),
    ),
    "Document Ranking": lambda m: (
        m.ensemble_single_source(128, 48, 8),
        m.ensemble_opencl_source(128, 48, 8),
    ),
}


@dataclass(frozen=True)
class Table1Row:
    application: str
    c_api: MetricsDelta
    ensemble: MetricsDelta
    openacc: MetricsDelta


def _fn_source(fn) -> str:
    return inspect.getsource(fn)


def api_metrics(module) -> tuple[Metrics, Metrics]:
    """(single-threaded, concurrent) metric vectors for the API approach."""
    single = analyze_python(_fn_source(module.run_python))
    host = analyze_python(_fn_source(module.run_api))
    kernel = analyze_kernelc(module.KERNEL_SOURCE)
    return single, host + kernel


def ensemble_metrics(name: str, module) -> tuple[Metrics, Metrics]:
    single_src, concurrent_src = _ENSEMBLE_SOURCES[name](module)
    return analyze_ensemble(single_src), analyze_ensemble(concurrent_src)


def openacc_metrics(module) -> tuple[Metrics, Metrics]:
    single = analyze_kernelc(module.SINGLE_C_SOURCE)
    annotated = analyze_kernelc(module.OPENACC_SOURCE)
    return single, annotated


def build_row(name: str) -> Table1Row:
    module = _APP_MODULES[name]
    api_single, api_conc = api_metrics(module)
    ens_single, ens_conc = ensemble_metrics(name, module)
    acc_single, acc_conc = openacc_metrics(module)
    return Table1Row(
        application=name,
        c_api=api_conc.delta(api_single),
        ensemble=ens_conc.delta(ens_single),
        openacc=acc_conc.delta(acc_single),
    )


def build_table1() -> list[Table1Row]:
    """All five rows of Table 1."""
    return [build_row(name) for name in APPLICATIONS]


def render_table1(rows: list[Table1Row] | None = None) -> str:
    """The paper's Table 1 as text: Δ (Δ%) per metric and approach."""
    rows = rows if rows is not None else build_table1()
    header = (
        f"{'Application':<24}"
        f"{'LoC':^36}{'Cyclomatic':^36}{'ABC':^36}\n"
        f"{'':<24}"
        + f"{'C':^12}{'Ensemble':^12}{'OpenACC':^12}" * 3
    )
    lines = [header]
    for row in rows:
        def cell(delta, attr, pct_attr):
            return f"{getattr(delta, attr):g} ({getattr(delta, pct_attr):d})"

        lines.append(
            f"{row.application:<24}"
            f"{cell(row.c_api, 'loc', 'loc_pct'):^12}"
            f"{cell(row.ensemble, 'loc', 'loc_pct'):^12}"
            f"{cell(row.openacc, 'loc', 'loc_pct'):^12}"
            f"{cell(row.c_api, 'cyclomatic', 'cyclomatic_pct'):^12}"
            f"{cell(row.ensemble, 'cyclomatic', 'cyclomatic_pct'):^12}"
            f"{cell(row.openacc, 'cyclomatic', 'cyclomatic_pct'):^12}"
            f"{cell(row.c_api, 'abc', 'abc_pct'):^12}"
            f"{cell(row.ensemble, 'abc', 'abc_pct'):^12}"
            f"{cell(row.openacc, 'abc', 'abc_pct'):^12}"
        )
    return "\n".join(lines)
