"""Common metric representation (Table 1's three columns).

The paper reports, per application and approach, the *difference*
between the concurrent and the single-threaded version in: lines of
code, McCabe cyclomatic complexity, and the ABC size metric
(assignments / branches / conditions, Fitzpatrick 2000).  ABC components
are kept as a vector so multi-artifact variants (host code + kernel
source) can be summed before taking the magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Metrics:
    loc: int
    cyclomatic: int
    assignments: int
    branches: int
    conditions: int

    @property
    def abc(self) -> float:
        """ABC magnitude |<A, B, C>|."""
        return math.sqrt(
            self.assignments**2 + self.branches**2 + self.conditions**2
        )

    def __add__(self, other: "Metrics") -> "Metrics":
        return Metrics(
            self.loc + other.loc,
            self.cyclomatic + other.cyclomatic,
            self.assignments + other.assignments,
            self.branches + other.branches,
            self.conditions + other.conditions,
        )

    def delta(self, baseline: "Metrics") -> "MetricsDelta":
        return MetricsDelta(
            loc=self.loc - baseline.loc,
            loc_pct=_pct(self.loc - baseline.loc, baseline.loc),
            cyclomatic=self.cyclomatic - baseline.cyclomatic,
            cyclomatic_pct=_pct(
                self.cyclomatic - baseline.cyclomatic, baseline.cyclomatic
            ),
            abc=round(self.abc - baseline.abc, 1),
            abc_pct=_pct(self.abc - baseline.abc, baseline.abc),
        )


@dataclass(frozen=True)
class MetricsDelta:
    """One Table-1 cell triple: absolute change and percentage."""

    loc: int
    loc_pct: int
    cyclomatic: int
    cyclomatic_pct: int
    abc: float
    abc_pct: int


def _pct(change: float, base: float) -> int:
    if base == 0:
        return 0
    return round(100.0 * change / base)


def text_loc(source: str, comment_starts: tuple[str, ...] = ("//",)) -> int:
    """Physical lines of code: non-blank, non-comment-only lines.

    Block comments (``/* ... */``) are stripped first; ``#pragma`` lines
    count as code — annotations are the cost the pragma approach pays.
    """
    out = []
    in_block = False
    for raw in source.splitlines():
        line = raw.strip()
        if in_block:
            if "*/" in line:
                line = line.split("*/", 1)[1].strip()
                in_block = False
            else:
                continue
        while "/*" in line:
            head, rest = line.split("/*", 1)
            if "*/" in rest:
                line = (head + rest.split("*/", 1)[1]).strip()
            else:
                line = head.strip()
                in_block = True
                break
        if not line:
            continue
        if any(line.startswith(mark) for mark in comment_starts):
            continue
        out.append(line)
    return len(out)
