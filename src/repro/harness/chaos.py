"""End-to-end chaos sweeps: figure regeneration under injected faults.

PR 7 made fault injection deterministic per gate; this module checks
recovery *end to end*: every Figure 3 chart and the Figure-4 pipeline
is regenerated under a matrix of fault plans (kind x injection site x
fusion on/off) and held to three invariants against its fault-free
twin:

(a) **bit-identical buffers** — the result payload of the faulted
    regeneration equals the fault-free one exactly (recovery is
    invisible in the data);
(b) **delta == priced recovery cost** — the faulted priced total minus
    the clean priced total equals *exactly* the sum of the run's
    ``fault.*`` charges (aborted attempts plus backoff), checked with
    :class:`fractions.Fraction` arithmetic over the raw trace spans so
    no float-tolerance band can hide a mispriced retry;
(c) **seed-stable replay** — resetting the plan and rerunning
    reproduces the faulted ledger bit-for-bit.

Invariant (b) holds when recovery happens *in place*: transient faults
(retry on the same device) and ``vec``-tier degradation (priced
identically by the tier-agreement invariant, so its delta is zero).
Device-loss failover re-prices the re-issued work on the surviving
device's spec, so the default matrix pairs the ``permanent`` and
``device-lost`` kinds with the ``vec`` site only; cross-device
failover is exercised by the chaos test suites, which assert (a) and
(c) but not the exact delta.

With no plan installed every gate is a single ``None`` check, so the
golden figures stay byte-identical — the golden-figure suite pins
this.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..opencl import dispatch
from ..opencl.context import current_clock
from ..opencl.faults import (
    DEVICE_LOST,
    PERMANENT,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)
from ..trace import Tracer, tracing
from .figures import build_figure, figure_spec, scaled_devices

#: Figure targets a chaos cell may regenerate.
FIGURE_TARGETS = ("3a", "3b", "3c", "3d", "3e")

#: All chaos targets: the Figure 3 series plus the Figure-4 pipeline
#: (actor form and flat-API form, run back to back).
TARGETS = FIGURE_TARGETS + ("fig4",)

#: CI-sized parameter overrides per figure (the chaos invariants are
#: size-independent, so the test suites sweep at these).
SMOKE_PARAMS = {
    "3a": {"n": 16},
    "3b": {"w": 12, "h": 12, "max_iter": 24},
    "3c": {"n": 16},
    "3d": {"n": 512},
    "3e": {"ndocs": 24, "v": 12, "repeats": 3},
}

#: Figure-4 matrix sizes per sweep mode.
FIG4_N = {"full": 32, "smoke": 8}

#: The Figure-4 device scaling (matches
#: :func:`repro.harness.regenerate.regenerate_figure4`).
_FIG4_COMPUTE_SCALE = 0.08


@dataclass(frozen=True)
class ChaosPlan:
    """One cell of the chaos matrix: a fault plan aimed at one target.

    ``specs`` are the :class:`~repro.opencl.faults.FaultSpec` entries;
    :meth:`make_plan` builds a fresh plan so cells never share
    occurrence counters.
    """

    name: str
    target: str
    fusion: bool
    specs: tuple

    def make_plan(self) -> FaultPlan:
        """A fresh :class:`FaultPlan` for this cell."""
        return FaultPlan(self.specs)


@dataclass
class ChaosRun:
    """One measured regeneration (fault-free, faulted, or replay).

    ``priced`` and ``fault_charges`` are exact Fraction sums over the
    run's cost spans (``fault_charges`` keys on the ``fault.`` span-name
    prefix); ``signature`` is the replay-comparable fingerprint.
    """

    result: object
    priced: Fraction
    fault_charges: Fraction
    injected: int
    signature: tuple


@dataclass
class ChaosCell:
    """Outcome of one verified matrix cell."""

    plan: ChaosPlan
    injected: int
    recovery_ns: float
    delta_ns: float


@dataclass
class ChaosReport:
    """The verified sweep: one :class:`ChaosCell` per matrix cell."""

    cells: list

    @property
    def injected(self) -> int:
        """Total faults injected across the sweep."""
        return sum(cell.injected for cell in self.cells)


#: Transient injection sites and the target exercising each: the five
#: substrate ops plus the three VM/Ensemble ops of this PR.  ``native``,
#: ``vm`` and VM ``handoff`` fire inside the figures' Ensemble
#: variants; the runtime (KernelActor) ``handoff`` fires in the
#: Figure-4 actor pipeline.
_SITE_TARGETS = (
    ("h2d", "3a"),
    ("d2h", "3b"),
    ("kernel", "3c"),
    ("api", "3d"),
    ("build", "3e"),
    ("native", "3a"),
    ("vm", "3c"),
    ("handoff", "3c"),
    ("handoff", "fig4"),
)


def default_matrix() -> tuple:
    """The default chaos matrix (24 cells).

    Transient faults at every injection site and all three kinds at the
    ``vec`` site (whose degradation prices identically), each swept
    with fusion off and on.  Permanent/device-lost faults at the other
    sites abort or re-price the run, so they live in the chaos test
    suites rather than the exact-delta sweep (module docstring).
    """
    cells = []
    for fusion in (False, True):
        tag = "fused" if fusion else "plain"
        for op, target in _SITE_TARGETS:
            cells.append(
                ChaosPlan(
                    f"{op}-transient-{target}-{tag}",
                    target,
                    fusion,
                    (FaultSpec(op, kind=TRANSIENT),),
                )
            )
        for kind, target in (
            (TRANSIENT, "3a"),
            (PERMANENT, "3d"),
            (DEVICE_LOST, "3c"),
        ):
            cells.append(
                ChaosPlan(
                    f"vec-{kind}-{target}-{tag}",
                    target,
                    fusion,
                    (FaultSpec("vec", kind=kind),),
                )
            )
    return tuple(cells)


def priced_totals(tracers: Iterable[Tracer]) -> tuple:
    """Exact ``(priced_total, fault_part)`` over *tracers*' cost spans.

    Both are Fractions; ``fault_part`` sums the spans whose name starts
    with ``fault.`` — aborted attempts (``fault.h2d``, ``fault.build``,
    ``fault.<api-call>``, ``fault.vm.*``, ``fault.ensemble.*``, ...)
    plus retry backoff (``fault.backoff``).
    """
    total = Fraction(0)
    fault_part = Fraction(0)
    for tracer in tracers:
        for span in tracer.spans:
            if not span.cost:
                continue
            dur = Fraction(span.dur_ns)
            total += dur
            if span.name.startswith("fault."):
                fault_part += dur
    return total, fault_part


def run_target(
    target: str,
    plan: Optional[FaultPlan] = None,
    fusion: bool = False,
    sizes: str = "full",
    fig4_n: Optional[int] = None,
) -> ChaosRun:
    """Regenerate one chaos target under an optional fault plan.

    Installs *plan* (reset first) and the fusion setting via
    :func:`repro.opencl.dispatch.configure` for the duration of the
    run, restoring the fault-free defaults after.
    """
    if target not in TARGETS:
        raise ValueError(f"unknown chaos target {target!r}")
    if plan is not None:
        plan.reset()
    dispatch.configure(fusion=fusion, faults=plan)
    try:
        if target == "fig4":
            run = _run_fig4(fig4_n if fig4_n is not None else FIG4_N[sizes])
        else:
            run = _run_figure(target, sizes)
    finally:
        dispatch.configure(fusion=False, faults=None)
    run.injected = plan.injected if plan is not None else 0
    return run


def _run_figure(target: str, sizes: str) -> ChaosRun:
    spec = figure_spec(target)
    if sizes == "smoke":
        spec = replace(spec, params=dict(SMOKE_PARAMS[target]))
    sink: dict = {}
    fig = build_figure(spec, tracer_sink=sink)
    priced, fault_part = priced_totals(sink.values())
    bars = tuple((bar.label, bar.raw_total_ns) for bar in fig.bars)
    return ChaosRun(
        fig.result,
        priced,
        fault_part,
        0,
        (repr(fig.result), bars, priced, fault_part),
    )


def _run_fig4(n: int) -> ChaosRun:
    from ..apps.lud import runners as lud

    with scaled_devices(_FIG4_COMPUTE_SCALE, 2048 / n):
        tracer = Tracer()
        current_clock().timeline.reset()
        with tracing(tracer):
            actors = lud.run_actors(n, "GPU", movable=True)
            api = lud.run_api(n, "GPU")
    priced, fault_part = priced_totals((tracer,))
    result = (
        actors.result,
        tuple(actors.meta["m"]),
        api.result,
        tuple(api.meta["m"]),
    )
    return ChaosRun(
        result, priced, fault_part, 0, (result, priced, fault_part)
    )


def chaos_sweep(
    matrix: Optional[Sequence[ChaosPlan]] = None,
    sizes: str = "full",
    replay: bool = True,
    fig4_n: Optional[int] = None,
) -> ChaosReport:
    """Run the chaos matrix, enforcing the three invariants per cell.

    Each cell's target is regenerated fault-free once per
    ``(target, fusion)`` pair (cached), then under the cell's plan, and
    — with *replay* on — a third time after ``plan.reset()``.  Raises
    :class:`AssertionError` naming the offending cell on any violation;
    returns the verified :class:`ChaosReport` otherwise.
    """
    if matrix is None:
        matrix = default_matrix()
    clean: dict = {}
    cells = []
    for cell in matrix:
        ckey = (cell.target, cell.fusion)
        if ckey not in clean:
            base = run_target(
                cell.target, fusion=cell.fusion, sizes=sizes, fig4_n=fig4_n
            )
            if base.fault_charges != 0:
                raise AssertionError(
                    f"{cell.target}: fault-free run charged "
                    f"{float(base.fault_charges)} ns of fault.* spans"
                )
            clean[ckey] = base
        base = clean[ckey]
        plan = cell.make_plan()
        faulted = run_target(
            cell.target,
            plan=plan,
            fusion=cell.fusion,
            sizes=sizes,
            fig4_n=fig4_n,
        )
        if faulted.result != base.result:
            raise AssertionError(
                f"{cell.name}: faulted result diverged from the "
                f"fault-free run"
            )
        delta = faulted.priced - base.priced
        if delta != faulted.fault_charges:
            raise AssertionError(
                f"{cell.name}: priced delta {float(delta)} ns != summed "
                f"fault.* charges {float(faulted.fault_charges)} ns"
            )
        if replay:
            again = run_target(
                cell.target,
                plan=plan,
                fusion=cell.fusion,
                sizes=sizes,
                fig4_n=fig4_n,
            )
            if (
                again.signature != faulted.signature
                or again.injected != faulted.injected
            ):
                raise AssertionError(
                    f"{cell.name}: faulted ledger did not replay "
                    f"bit-for-bit under the same seed"
                )
        cells.append(
            ChaosCell(
                cell,
                faulted.injected,
                float(faulted.fault_charges),
                float(delta),
            )
        )
    return ChaosReport(cells)
