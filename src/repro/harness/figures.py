"""Figure 3 series builder.

Each figure compares {Ensemble, C-OpenCL} x {GPU, CPU} plus C-OpenACC,
normalised to the Ensemble GPU total, with each bar split into the
paper's four segments (to device / from device / kernel / overhead).

Device scaling
--------------
The paper runs 1024² matrices and 2^25-element arrays on real hardware;
the reproduction's kernels execute in pure Python, so benchmark sizes
are far smaller.  To keep each figure in the *same cost regime* as the
paper (the same balance of kernel time vs transfer time vs fixed
overheads), every figure installs a bench platform derived from the
full-size device specs by:

* shrinking compute (compute units) by ``compute_scale``, and
* additionally *multiplying* link bandwidth by ``size_ratio`` — the
  ratio of the paper's problem size to the benchmark's — because kernel
  work grows faster with problem size than transfer volume does (e.g.
  O(n^3) vs O(n^2) for matmul); speeding the link up by that ratio puts
  the small benchmark in the paper-size kernel:transfer regime.

Both knobs are recorded in the figure result for full transparency.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..errors import AccUnsupportedError
from ..trace import Tracer, tracing, write_chrome_trace
from ..opencl import (
    Device,
    Platform,
    cpu_spec,
    current_clock,
    gpu_spec,
    reset_platforms,
    set_platforms,
)
from ..runtime.oclenv import reset_device_matrix

SEGMENTS = ("to_device", "from_device", "kernel", "overhead")


@dataclass
class Bar:
    """One column of a Figure-3 style chart (normalised)."""

    label: str
    segments: dict[str, float] = field(default_factory=dict)
    total: float = 0.0
    raw_total_ns: float = 0.0
    note: str = ""

    @property
    def failed(self) -> bool:
        return bool(self.note) and not self.segments


@dataclass
class FigureResult:
    figure: str
    title: str
    bars: list[Bar]
    baseline_ns: float
    params: dict = field(default_factory=dict)
    #: per-variant four-segment totals recomputed from raw trace spans
    #: (cross-validated against the ledger breakdowns at build time)
    trace_summaries: dict[str, dict[str, float]] = field(default_factory=dict)
    #: per-variant Chrome trace files written when a trace_dir was given
    trace_files: dict[str, str] = field(default_factory=dict)
    #: per-variant schedule-aware end-to-end view: ``elapsed_ns``
    #: (critical-path time on the composed timeline, which the clock
    #: restarts before each variant) plus its exact wall-time
    #: attribution (transfer / compute / api / overlap / idle)
    elapsed: dict[str, dict[str, float]] = field(default_factory=dict)
    #: the agreed result payload all variants produced (the build
    #: asserts they agree) — the chaos harness compares this
    #: bit-for-bit between fault-free and faulted regenerations
    result: object = None

    def bar(self, label: str) -> Bar:
        for bar in self.bars:
            if bar.label == label:
                return bar
        raise KeyError(label)


@dataclass
class FigureSpec:
    figure: str
    title: str
    #: callables: kwargs(device_type) -> RunOutcome
    ensemble: Callable
    c_opencl: Callable
    openacc: Optional[Callable]
    params: dict = field(default_factory=dict)
    compute_scale: float = 0.1
    size_ratio: float = 16.0
    #: how much smaller fixed costs (compile, launch, per-transfer
    #: latency, API calls) are relative to the benchmark's work compared
    #: to the paper's runs; defaults to size_ratio.
    fixed_ratio: Optional[float] = None


def bench_platform(
    compute_scale: float,
    size_ratio: float,
    fixed_ratio: Optional[float] = None,
) -> Platform:
    """The scaled platform a figure runs on (see module docstring)."""
    if fixed_ratio is None:
        fixed_ratio = size_ratio
    gpu = gpu_spec(compute_scale, name=f"GPU bench x{compute_scale}")
    cpu = cpu_spec(compute_scale, name=f"CPU bench x{compute_scale}")
    gpu = replace(
        gpu,
        h2d_bytes_per_ns=gpu.h2d_bytes_per_ns * size_ratio,
        d2h_bytes_per_ns=gpu.d2h_bytes_per_ns * size_ratio,
        compile_ns=gpu.compile_ns / fixed_ratio,
        api_call_ns=gpu.api_call_ns / fixed_ratio,
        transfer_latency_ns=gpu.transfer_latency_ns / fixed_ratio,
        kernel_launch_ns=gpu.kernel_launch_ns / fixed_ratio,
    )
    cpu = replace(
        cpu,
        h2d_bytes_per_ns=cpu.h2d_bytes_per_ns * size_ratio,
        d2h_bytes_per_ns=cpu.d2h_bytes_per_ns * size_ratio,
        compile_ns=cpu.compile_ns / fixed_ratio,
        api_call_ns=cpu.api_call_ns / fixed_ratio,
        transfer_latency_ns=cpu.transfer_latency_ns / fixed_ratio,
        kernel_launch_ns=cpu.kernel_launch_ns / fixed_ratio,
    )
    return Platform(
        "Repro bench platform",
        "Repro Computing",
        [Device(cpu), Device(gpu)],
    )


class scaled_devices:
    """Context manager installing a bench platform for a measured run."""

    def __init__(
        self,
        compute_scale: float,
        size_ratio: float,
        fixed_ratio: Optional[float] = None,
    ) -> None:
        self.platform = bench_platform(compute_scale, size_ratio, fixed_ratio)

    def __enter__(self) -> Platform:
        set_platforms([self.platform])
        reset_device_matrix()
        return self.platform

    def __exit__(self, exc_type, exc, tb) -> None:
        reset_platforms()
        reset_device_matrix()


#: Relative tolerance for the trace/ledger cross-check.  Both sides sum
#: the same charges; only float accumulation order (actor threads) can
#: differ, so the bound is tight.
TRACE_CHECK_RTOL = 1e-6


def _trace_slug(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9]+", "_", label).strip("_").lower()


def _check_trace_consistency(
    figure: str, label: str, breakdown: dict, summary: dict
) -> None:
    """Every figure bar is cross-checked against the raw trace spans."""
    for segment in SEGMENTS:
        ledger_ns = breakdown.get(segment, 0.0)
        trace_ns = summary.get(segment, 0.0)
        tol = TRACE_CHECK_RTOL * max(1.0, abs(ledger_ns))
        if abs(ledger_ns - trace_ns) > tol:
            raise AssertionError(
                f"{figure}/{label}: trace spans disagree with the cost "
                f"ledger on segment {segment!r}: ledger {ledger_ns} ns "
                f"vs trace {trace_ns} ns"
            )


def build_figure(
    spec: FigureSpec,
    trace_dir: Optional[str] = None,
    tracer_sink: Optional[dict] = None,
) -> FigureResult:
    """Run all variants of one figure and normalise to Ensemble GPU.

    Every variant runs under a :class:`~repro.trace.Tracer`; its
    four-segment :meth:`~repro.trace.Tracer.summary` is cross-validated
    against the ledger breakdown (the Figure 3 segments) and kept on the
    result.  With *trace_dir* set, each variant's Chrome trace JSON is
    written next to the figure data as ``fig<id>_<variant>.trace.json``.
    With *tracer_sink* given (a dict), each variant's Tracer lands in it
    under the variant label — the chaos harness sums exact per-span
    charges from these.
    """
    bars: list[Bar] = []
    trace_summaries: dict[str, dict[str, float]] = {}
    trace_files: dict[str, str] = {}
    elapsed: dict[str, dict[str, float]] = {}
    with scaled_devices(spec.compute_scale, spec.size_ratio,
                        spec.fixed_ratio):
        runs = [
            ("Ensemble GPU", spec.ensemble, "GPU"),
            ("C-OpenCL GPU", spec.c_opencl, "GPU"),
            ("C-OpenACC GPU", spec.openacc, "GPU"),
            ("Ensemble CPU", spec.ensemble, "CPU"),
            ("C-OpenCL CPU", spec.c_opencl, "CPU"),
            ("C-OpenACC CPU", spec.openacc, "CPU"),
        ]
        raw: dict[str, Optional[dict]] = {}
        notes: dict[str, str] = {}
        results: dict[str, object] = {}
        for label, runner, device_type in runs:
            if runner is None:
                raw[label] = None
                notes[label] = "no implementation"
                continue
            tracer = Tracer()
            # Restart the composed end-to-end timeline so this
            # variant's elapsed_ns measures this variant alone (the
            # ensemble runners also reset it via their own ledger
            # reset; the flat-API and OpenACC runners never do).
            current_clock().timeline.reset()
            try:
                with tracing(tracer):
                    outcome = runner(device_type=device_type, **spec.params)
            except AccUnsupportedError as exc:
                raw[label] = None
                notes[label] = f"compiler rejected the code: {exc}"
                continue
            raw[label] = outcome.breakdown
            results[label] = outcome.result
            if tracer_sink is not None:
                tracer_sink[label] = tracer
            summary = tracer.summary(with_elapsed=True)
            elapsed[label] = summary.pop("elapsed")
            _check_trace_consistency(
                spec.figure, label, outcome.breakdown, summary
            )
            trace_summaries[label] = summary
            if trace_dir is not None:
                os.makedirs(trace_dir, exist_ok=True)
                path = os.path.join(
                    trace_dir,
                    f"fig{spec.figure}_{_trace_slug(label)}.trace.json",
                )
                write_chrome_trace(tracer, path)
                trace_files[label] = path
    values = [r for r in (results.get(label) for label, _, _ in runs) if r is not None]
    if len(set(map(str, values))) > 1:
        raise AssertionError(
            f"{spec.figure}: variants disagree: {results}"
        )

    baseline = sum(raw["Ensemble GPU"].values())  # type: ignore[union-attr]
    for label, _, _ in runs:
        breakdown = raw[label]
        if breakdown is None:
            bars.append(Bar(label, {}, 0.0, 0.0, notes.get(label, "")))
            continue
        total_ns = sum(breakdown.values())
        bars.append(
            Bar(
                label,
                {k: v / baseline for k, v in breakdown.items()},
                total_ns / baseline,
                total_ns,
            )
        )
    return FigureResult(
        spec.figure,
        spec.title,
        bars,
        baseline,
        dict(
            spec.params,
            compute_scale=spec.compute_scale,
            size_ratio=spec.size_ratio,
        ),
        trace_summaries=trace_summaries,
        trace_files=trace_files,
        elapsed=elapsed,
        result=values[0] if values else None,
    )


def _figure_specs() -> dict[str, FigureSpec]:
    from ..apps import docrank, lud, mandelbrot, matmul, reduction

    return {
        "3a": FigureSpec(
            "3a",
            "Matrix multiplication (paper: 1024x1024)",
            ensemble=matmul.run_ensemble,
            c_opencl=matmul.run_api,
            openacc=matmul.run_openacc,
            params={"n": 64},
            compute_scale=0.08,
            size_ratio=1024 / 64,
        ),
        "3b": FigureSpec(
            "3b",
            "Mandelbrot (paper: 1000 iterations)",
            ensemble=mandelbrot.run_ensemble,
            c_opencl=mandelbrot.run_api,
            openacc=mandelbrot.run_openacc,
            params={"w": 48, "h": 48, "max_iter": 120},
            compute_scale=0.08,
            size_ratio=8.0,
        ),
        "3c": FigureSpec(
            "3c",
            "LUD, three kernels in series (paper: 2048x2048)",
            ensemble=lud.run_ensemble,
            c_opencl=lud.run_api,
            openacc=lud.run_openacc,
            params={"n": 48},
            compute_scale=0.08,
            size_ratio=2048 / 48,
        ),
        "3d": FigureSpec(
            "3d",
            "Parallel reduction (paper: 2^25 elements)",
            ensemble=reduction.run_ensemble,
            c_opencl=reduction.run_api,
            openacc=reduction.run_openacc,
            params={"n": 4096},
            compute_scale=0.08,
            # Reduction is O(n) kernel vs O(n) transfer: the paper-size
            # kernel:transfer balance is size-independent, so the link
            # runs at its natural speed (the figure is transfer-bound,
            # exactly as 2^25 elements over PCIe is).  Fixed costs are
            # still negligible at 2^25 elements, hence the separate
            # fixed_ratio.
            size_ratio=1.0,
            fixed_ratio=(2**25) / 4096,
        ),
        "3e": FigureSpec(
            "3e",
            "Document ranking (real-world application)",
            ensemble=docrank.run_ensemble,
            c_opencl=docrank.run_api,
            openacc=docrank.run_openacc,
            params={"ndocs": 128, "v": 48, "repeats": 8},
            compute_scale=0.08,
            # kernel work is O(docs*terms*repeats) vs O(docs*terms)
            # moved: the regime ratio equals the repeat count.
            size_ratio=8.0,
        ),
    }


def figure_spec(figure: str) -> FigureSpec:
    return _figure_specs()[figure]


def build_figure_by_id(
    figure: str, trace_dir: Optional[str] = None
) -> FigureResult:
    return build_figure(figure_spec(figure), trace_dir=trace_dir)
