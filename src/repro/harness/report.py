"""Text rendering of figures and tables (the paper's charts as ASCII)."""

from __future__ import annotations

from .figures import SEGMENTS, FigureResult

_SEGMENT_LABEL = {
    "to_device": "to device",
    "from_device": "from device",
    "kernel": "kernel",
    "overhead": "overhead",
}


def render_figure(result: FigureResult, width: int = 46) -> str:
    """One figure as a table of normalised stacked segments plus a bar."""
    lines = [
        f"Figure {result.figure}: {result.title}",
        f"(normalised to Ensemble GPU = 1.00; params {result.params})",
        "",
        f"{'variant':<16}" + "".join(
            f"{_SEGMENT_LABEL[s]:>12}" for s in SEGMENTS
        ) + f"{'total':>10}",
    ]
    peak = max((bar.total for bar in result.bars), default=1.0) or 1.0
    for bar in result.bars:
        if bar.failed:
            lines.append(f"{bar.label:<16}  -- {bar.note}")
            continue
        cells = "".join(
            f"{bar.segments.get(s, 0.0):>12.3f}" for s in SEGMENTS
        )
        lines.append(f"{bar.label:<16}{cells}{bar.total:>10.2f}")
    lines.append("")
    for bar in result.bars:
        if bar.failed:
            lines.append(f"{bar.label:<16}|  (no result: {bar.note})")
            continue
        filled = max(1, round(width * bar.total / peak))
        lines.append(f"{bar.label:<16}|{'#' * filled} {bar.total:.2f}x")
    if result.elapsed:
        lines.append("")
        lines.append(render_elapsed(result))
    if result.trace_summaries:
        lines.append("")
        lines.append(render_trace_check(result))
    return "\n".join(lines)


#: Composed-timeline attribution kinds, in rendering order.
_ELAPSED_KINDS = ("transfer", "compute", "api", "overlap", "idle")


def render_elapsed(result: FigureResult) -> str:
    """Per-variant end-to-end time on the composed schedule timeline.

    ``elapsed`` is critical-path wall time: unlike the priced totals
    above (which sum busy nanoseconds and are identical whatever the
    schedule), it credits overlapped work once.  Each variant's elapsed
    nanoseconds are attributed exactly — every instant is transfer,
    compute, api, overlap (more than one kind in flight) or idle.
    """
    lines = [
        "end-to-end schedule (elapsed ns, attributed; overlap counted "
        "once):",
        f"{'variant':<16}{'elapsed':>12}" + "".join(
            f"{kind:>10}" for kind in _ELAPSED_KINDS
        ),
    ]
    for bar in result.bars:
        section = result.elapsed.get(bar.label)
        if section is None:
            lines.append(f"{bar.label:<16}  -- {bar.note}")
            continue
        cells = "".join(
            f"{section.get(kind, 0.0):>10.0f}" for kind in _ELAPSED_KINDS
        )
        lines.append(
            f"{bar.label:<16}{section.get('elapsed_ns', 0.0):>12.0f}{cells}"
        )
    return "\n".join(lines)


def render_trace_check(result: FigureResult) -> str:
    """One line per variant confirming the trace/ledger cross-check.

    The segment totals shown in the figure come from the cost ledgers;
    at build time each variant is re-summed from its raw trace spans
    (:meth:`repro.trace.Tracer.summary`) and the two must agree — this
    renders the deviation so the report carries the evidence.
    """
    if not result.trace_summaries:
        return "trace cross-check: no traces recorded"
    worst = 0.0
    for label, summary in result.trace_summaries.items():
        bar = result.bar(label)
        ledger_total = bar.raw_total_ns
        trace_total = sum(summary.values())
        worst = max(worst, abs(ledger_total - trace_total))
    lines = [
        f"trace cross-check: {len(result.trace_summaries)} variants, "
        f"segment totals re-derived from raw spans agree with the "
        f"ledgers (max |delta| = {worst:.6f} ns)"
    ]
    for label, path in sorted(result.trace_files.items()):
        lines.append(f"  trace file: {label} -> {path}")
    return "\n".join(lines)


def render_ratio_summary(result: FigureResult) -> str:
    """Key ratios the paper's prose reports for the figure."""
    def total(label: str) -> float:
        bar = result.bar(label)
        return bar.total if not bar.failed else float("nan")

    lines = [f"Figure {result.figure} ratios (x Ensemble GPU):"]
    for label in (
        "C-OpenCL GPU",
        "C-OpenACC GPU",
        "Ensemble CPU",
        "C-OpenCL CPU",
        "C-OpenACC CPU",
    ):
        bar = result.bar(label)
        if bar.failed:
            lines.append(f"  {label:<16} no result ({bar.note})")
        else:
            lines.append(f"  {label:<16} {bar.total:.2f}x")
    return "\n".join(lines)
