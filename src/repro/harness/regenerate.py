"""Regenerate the paper's entire evaluation section as one text report.

Run as::

    python -m repro.harness.regenerate [--trace-dir DIR]

This is the same code path the benchmark suite uses; the output is the
source of EXPERIMENTS.md's measured numbers.  Everything is priced by
the deterministic cost model, so the report is byte-identical across
machines and runs.  With ``--trace-dir`` every figure variant's Chrome
trace (Perfetto-loadable JSON) is written next to the report data, and
each figure's segment totals are cross-checked against the raw spans.
"""

from __future__ import annotations

import argparse
import os
from typing import Optional

from ..apps import lud
from ..metrics import render_table1
from ..runtime.oclenv import device_matrix
from .figures import build_figure_by_id, scaled_devices
from .report import render_figure

FIGURES = ("3a", "3b", "3c", "3d", "3e")


def regenerate_table1() -> str:
    return render_table1()


def regenerate_figures(trace_dir: Optional[str] = None) -> list[str]:
    return [
        render_figure(build_figure_by_id(figure, trace_dir=trace_dir))
        for figure in FIGURES
    ]


def regenerate_figure4(n: int = 32) -> str:
    with scaled_devices(0.08, 2048 / n):
        actor = lud.run_actors(n, "GPU", movable=True)
        ledger = device_matrix().combined_ledger()
        api = lud.run_api(n, "GPU")
    ratio = actor.total_ns / api.total_ns
    return (
        f"Figure 4 (LUD pipeline topology, n={n}): kernel-actor pipeline "
        f"vs sequential C dispatch = {ratio:.2f}x total; "
        f"{ledger.kernel_launches} launches, "
        f"{ledger.bytes_to_device} B to device, "
        f"{ledger.bytes_from_device} B back (the matrix crosses once in "
        "each direction — movability keeps it resident between kernels)"
    )


def regenerate_movability_ablation(n: int = 32) -> str:
    with scaled_devices(0.08, 1.0, 2048 / n):
        with_mov = lud.run_ensemble(n, "GPU", movable=True)
        mov_ledger = device_matrix().combined_ledger()
    with scaled_devices(0.08, 1.0, 2048 / n):
        without_mov = lud.run_ensemble(n, "GPU", movable=False)
        nomov_ledger = device_matrix().combined_ledger()
    speedup = without_mov.total_ns / with_mov.total_ns
    return (
        f"Movability ablation (LUD n={n}): {speedup:.1f}x slower without "
        f"mov (paper: ~36x at n=2048); bytes transferred "
        f"{nomov_ledger.bytes_to_device + nomov_ledger.bytes_from_device} "
        f"vs {mov_ledger.bytes_to_device + mov_ledger.bytes_from_device}"
    )


def regenerate_overlap_ablation(n: int = 16) -> str:
    """Out-of-order queue ablation on the Figure-4 LUD pipeline.

    Shared-nothing mode (movable=False) re-transfers between pipeline
    hops, so consecutive iterations carry independent commands; the
    out-of-order scheduler overlaps them while every priced total stays
    identical (docs/ARCHITECTURE.md section 2).  Reported on two axes:
    the queue-local makespan (origin 0 at the first command) and the
    composed end-to-end timeline, whose ``elapsed`` is critical-path
    wall time for the whole run — host API work included — with every
    elapsed nanosecond attributed to transfer / compute / api / overlap
    / idle.
    """
    from ..opencl.context import current_clock
    from ..runtime.oclenv import set_out_of_order_queues

    try:
        with scaled_devices(0.08, 1.0, 2048 / n):
            set_out_of_order_queues(False)
            base = lud.run_actors(n, "GPU", movable=False)
            (env,) = device_matrix().environments()
            in_order_makespan = env.queue.makespan_ns
            in_order_elapsed = current_clock().timeline.elapsed_ns
        with scaled_devices(0.08, 1.0, 2048 / n):
            set_out_of_order_queues(True)
            ooo = lud.run_actors(n, "GPU", movable=False)
            (env,) = device_matrix().environments()
            ooo_makespan = env.queue.makespan_ns
            overlap = env.queue.overlap_ns
            ooo_elapsed = current_clock().timeline.elapsed_ns
            attribution = current_clock().timeline.attribution()
    finally:
        set_out_of_order_queues(False)
    assert ooo.result == base.result
    assert ooo.breakdown == base.breakdown
    saved = 1.0 - ooo_makespan / in_order_makespan
    e2e_saved = 1.0 - ooo_elapsed / in_order_elapsed
    attributed = ", ".join(
        f"{kind} {attribution[kind]:.0f}"
        for kind in ("transfer", "compute", "api", "overlap", "idle")
    )
    return (
        f"Out-of-order ablation (LUD pipeline n={n}, shared-nothing): "
        f"queue makespan {in_order_makespan:.0f} ns in-order vs "
        f"{ooo_makespan:.0f} ns out-of-order ({saved:.1%} shorter, "
        f"{overlap:.0f} ns overlapped); end-to-end elapsed "
        f"{in_order_elapsed:.0f} ns in-order vs {ooo_elapsed:.0f} ns "
        f"out-of-order ({e2e_saved:.1%} shorter end to end; out-of-order "
        f"elapsed attributed as {attributed} ns); checksum and all "
        "ledger segments identical in both modes"
    )


def regenerate_all(trace_dir: Optional[str] = None) -> str:
    parts = [
        "=" * 72,
        "Table 1: difference between single-threaded and concurrent code",
        "=" * 72,
        regenerate_table1(),
        "",
    ]
    for text in regenerate_figures(trace_dir):
        parts += ["=" * 72, text, ""]
    parts += ["=" * 72, regenerate_figure4(), ""]
    parts += ["=" * 72, regenerate_movability_ablation(), ""]
    parts += ["=" * 72, regenerate_overlap_ablation(), ""]
    return "\n".join(parts)


def main() -> None:  # pragma: no cover - exercised via CLI
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation section"
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="also write per-variant Chrome trace JSON files here "
        "(load them at https://ui.perfetto.dev)",
    )
    args = parser.parse_args()
    if args.trace_dir is not None and (
        os.path.exists(args.trace_dir) and not os.path.isdir(args.trace_dir)
    ):
        parser.error(f"--trace-dir {args.trace_dir!r} is not a directory")
    print(regenerate_all(trace_dir=args.trace_dir))


if __name__ == "__main__":  # pragma: no cover
    main()
