"""Evaluation harness: regenerates every table and figure of Section 7."""

from .figures import (  # noqa: F401
    Bar,
    FigureResult,
    FigureSpec,
    SEGMENTS,
    bench_platform,
    build_figure,
    build_figure_by_id,
    figure_spec,
    scaled_devices,
)
from .chaos import (  # noqa: F401
    ChaosCell,
    ChaosPlan,
    ChaosReport,
    ChaosRun,
    chaos_sweep,
    default_matrix,
    priced_totals,
    run_target,
)
from .report import (  # noqa: F401
    render_figure,
    render_ratio_summary,
    render_trace_check,
)
