"""Exception hierarchy shared by every repro subsystem.

Each layer of the stack (kernel IR, kernel-C front end, OpenCL substrate,
Ensemble language, actor runtime, OpenACC baseline) raises a subclass of
:class:`ReproError` so callers can catch per-layer or catch-all.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class KirError(ReproError):
    """Malformed or unexecutable kernel IR."""


class KirValidationError(KirError):
    """IR failed static validation (unknown variable, bad types, ...)."""


class KirRuntimeError(KirError):
    """IR execution failed (out-of-bounds index, div by zero, ...)."""


class SourceError(ReproError):
    """An error with a position in some source text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """Tokeniser rejected the input text."""


class ParseError(SourceError):
    """Parser rejected the token stream."""


class TypeCheckError(SourceError):
    """Static semantic analysis rejected the program."""


class MovabilityError(TypeCheckError):
    """A movable (``mov``) value was used after being sent on a channel."""


class CLError(ReproError):
    """Base class for OpenCL substrate errors; carries a CL-style code.

    Errors raised by the deterministic fault-injection layer
    (:mod:`repro.opencl.faults`) additionally carry the injected
    :class:`~repro.opencl.faults.Fault` on :attr:`fault` and mark
    themselves :attr:`transient` when a bounded retry could succeed.
    """

    code = "CL_ERROR"
    #: a retry of the same operation may succeed (fault-injection layer)
    transient = False
    #: the injected Fault that produced this error, or None (real error)
    fault = None

    def __init__(self, message: str = "") -> None:
        super().__init__(f"{self.code}: {message}" if message else self.code)


class CLInvalidValue(CLError):
    code = "CL_INVALID_VALUE"


class CLInvalidDevice(CLError):
    code = "CL_INVALID_DEVICE"


class CLInvalidContext(CLError):
    code = "CL_INVALID_CONTEXT"


class CLInvalidKernelArgs(CLError):
    code = "CL_INVALID_KERNEL_ARGS"


class CLInvalidWorkGroupSize(CLError):
    code = "CL_INVALID_WORK_GROUP_SIZE"


class CLBuildProgramFailure(CLError):
    code = "CL_BUILD_PROGRAM_FAILURE"

    def __init__(self, message: str = "", build_log: str = "") -> None:
        self.build_log = build_log
        super().__init__(message)


class CLOutOfResources(CLError):
    code = "CL_OUT_OF_RESOURCES"


class CLMemObjectReleased(CLError):
    code = "CL_INVALID_MEM_OBJECT"


class CLDeviceLost(CLError):
    """The device dropped off the bus (permanent until platform reset).

    Raised when a fault plan injects a ``device-lost`` fault, and by any
    later write/dispatch aimed at the lost device.  Reading resident
    buffers back remains possible (see docs/RELIABILITY.md, "What device
    loss means here").
    """

    code = "CL_DEVICE_NOT_AVAILABLE"


class CLTransferFailure(CLError):
    """A buffer transfer failed (transient or permanent, per the fault)."""

    code = "CL_MEM_OBJECT_ALLOCATION_FAILURE"


class CLOutOfHostMemory(CLError):
    """A host-side API call failed (the injectable host-API fault)."""

    code = "CL_OUT_OF_HOST_MEMORY"


class RuntimeFault(ReproError):
    """Actor runtime misbehaviour (bad channel use, dead actor, ...)."""


class ChannelError(RuntimeFault):
    """Illegal channel operation (type mismatch, disconnected, closed)."""


class ChannelClosed(ChannelError):
    """All senders of a channel have terminated and the buffer is empty."""


class MovedValueError(RuntimeFault):
    """A movable value was accessed after ownership was transferred."""


class ActorError(RuntimeFault):
    """An actor's behaviour raised; wraps the original exception."""


class VMError(RuntimeFault):
    """Ensemble VM fault (bad bytecode, stack underflow, ...)."""


class AccError(ReproError):
    """OpenACC baseline: pragma parsing or region compilation failure."""


class AccUnsupportedError(AccError):
    """The pragma compiler refuses the construct (paper: PGI could not
    compile the document-ranking source)."""
