"""Unified tracing layer: spans + counters over the simulated timeline.

Enable tracing around any measured run and read the Figure 3 breakdown
straight off the raw spans::

    from repro.trace import tracing
    from repro.trace.export import write_chrome_trace

    with tracing() as tr:
        outcome = matmul.run_ensemble(n=32)
    assert tr.summary() == outcome.breakdown     # cross-checked in CI
    write_chrome_trace(tr, "matmul.trace.json")  # load in Perfetto
"""

from .export import (  # noqa: F401
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)
from .tracer import (  # noqa: F401
    COST_CATEGORIES,
    NULL_TRACER,
    CounterSample,
    NullTracer,
    SEGMENT_OF,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    thread_track,
    tracing,
)
