"""Structured tracing over the simulated timeline.

Every priced action in the reproduction — an OpenCL command, a host API
call, a batch of interpreted bytecodes — already charges a
:class:`~repro.opencl.costmodel.CostLedger`.  The tracer records the
same actions as *spans* (name, track, begin timestamp, duration) so a
run's timeline can be inspected, exported to Chrome trace-event JSON
(:mod:`repro.trace.export`) and cross-checked against the aggregated
Figure 3 segments.

Two kinds of spans exist:

* **cost spans** are emitted from the ledger charge sites and carry one
  of the four cost categories (``h2d`` / ``d2h`` / ``kernel`` /
  ``host``).  Their durations are exactly the nanoseconds charged, so
  :meth:`Tracer.summary` reproduces the Figure 3 four-segment breakdown
  directly from raw spans.
* **structural spans** (actor behaviour iterations, channel
  sends/receives, kernel-actor dispatches) describe *what was
  happening*; they carry no cost and are excluded from the summary.

Counters (buffer residency hits/misses, mailbox depths) accumulate a
running value per name and keep timestamped samples for export.

The default tracer is a no-op (:class:`NullTracer`); hot paths guard on
``tracer.enabled`` so untraced runs do no bookkeeping at all, and —
because simulated time only ever advances at charge sites — tracing
never perturbs the priced results.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

#: The ledger cost categories, in Figure 3 segment order.
COST_CATEGORIES = ("h2d", "d2h", "kernel", "host")

#: Cost category -> Figure 3 segment name (harness vocabulary).
SEGMENT_OF = {
    "h2d": "to_device",
    "d2h": "from_device",
    "kernel": "kernel",
    "host": "overhead",
}


def thread_track() -> str:
    """The per-OS-thread track for structural spans.

    Channel operations run on the *calling* actor's thread (a send
    executes in the sender even though the buffer lives in the
    receiver's port), so per-thread tracks are the ones on which spans
    are guaranteed to be well-nested.  Stage threads are named
    ``{stage}/{actor}``, which makes these tracks self-describing.
    """
    return f"thread/{threading.current_thread().name}"


def _sim_now() -> float:
    # Local import: repro.opencl.context imports this package at load
    # time, so the clock is resolved lazily at call time.
    from ..opencl.context import current_clock

    return current_clock().now_ns


#: Keys of the with_elapsed summary section, mirroring
#: repro.opencl.costmodel.TIMELINE_SEGMENTS (duplicated literally here
#: because repro.opencl imports this package at load time).
_ELAPSED_KEYS = ("transfer", "compute", "api", "overlap", "idle")


def _elapsed_section() -> dict[str, float]:
    # Snapshot of the current clock's composed end-to-end timeline
    # (lazy import for the same load-order reason as _sim_now).
    from ..opencl.context import current_clock

    timeline = current_clock().timeline
    section = timeline.attribution()
    section["elapsed_ns"] = timeline.elapsed_ns
    return section


@dataclass
class Span:
    """One completed interval on a track of the simulated timeline."""

    name: str
    track: str
    ts_ns: float
    dur_ns: float
    #: cost category for cost spans; a free-form tag for structural ones
    category: Optional[str] = None
    #: True when the span's duration was charged to a cost ledger
    cost: bool = False
    args: dict = field(default_factory=dict)

    @property
    def end_ns(self) -> float:
        return self.ts_ns + self.dur_ns


@dataclass
class CounterSample:
    """A counter's value at one instant (exported as a 'C' event)."""

    name: str
    track: str
    ts_ns: float
    value: float


class _SpanHandle:
    """Context manager recording a structural span on exit."""

    __slots__ = ("_tracer", "name", "track", "category", "args", "_ts")

    def __init__(self, tracer: "Tracer", name: str, track: str,
                 category: Optional[str], args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.track = track
        self.category = category
        self.args = args
        self._ts = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._ts = self._tracer._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._tracer._now()
        self._tracer._append(
            Span(self.name, self.track, self._ts, end - self._ts,
                 self.category, False, self.args)
        )


class _NullSpanHandle:
    """Shared, reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()


class Tracer:
    """Collects spans and counters for one traced run.  Thread-safe."""

    enabled = True

    def __init__(self, clock_fn: Optional[Callable[[], float]] = None) -> None:
        self._clock_fn = clock_fn
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        self.counter_samples: list[CounterSample] = []
        self._counters: dict[str, float] = {}

    # -- recording ---------------------------------------------------------

    def _now(self) -> float:
        return (self._clock_fn or _sim_now)()

    def _append(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def cost_span(
        self,
        category: str,
        ns: float,
        name: Optional[str] = None,
        track: str = "host/api",
        ts_ns: Optional[float] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Record *ns* of charged *category* cost as a completed span.

        Called from the ledger charge sites; ``sum`` of these per
        category is exactly the ledger's Figure 3 breakdown.
        """
        if category not in SEGMENT_OF:
            raise ValueError(f"unknown cost category {category!r}")
        if ts_ns is None:
            ts_ns = self._now() - ns
        self._append(
            Span(name or category, track, ts_ns, ns, category, True,
                 args or {})
        )

    def span(
        self,
        name: str,
        track: str,
        category: Optional[str] = None,
        **args: Any,
    ) -> _SpanHandle:
        """Context manager recording a structural (cost-free) span."""
        return _SpanHandle(self, name, track, category, args)

    def struct_span(
        self,
        name: str,
        track: str,
        ts_ns: float,
        dur_ns: float,
        category: Optional[str] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a structural span at an explicit timestamp.

        Used by the queue scheduler and the multi-device dispatcher,
        whose spans live on their own schedule timelines rather than at
        the clock's current position.  Never counted by
        :meth:`summary` (``cost=False``).
        """
        self._append(
            Span(name, track, ts_ns, dur_ns, category, False, args or {})
        )

    def count(
        self,
        name: str,
        delta: float = 1.0,
        track: str = "counters",
        ts_ns: Optional[float] = None,
    ) -> float:
        """Add *delta* to counter *name*; returns and samples the total."""
        if ts_ns is None:
            ts_ns = self._now()
        with self._lock:
            value = self._counters.get(name, 0.0) + delta
            self._counters[name] = value
            self.counter_samples.append(
                CounterSample(name, track, ts_ns, value)
            )
        return value

    # -- queries -----------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current cumulative value of counter *name* (0.0 if unseen)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def tracks(self) -> list[str]:
        """All track names, in first-seen order."""
        seen: dict[str, None] = {}
        with self._lock:
            for span in self.spans:
                seen.setdefault(span.track, None)
            for sample in self.counter_samples:
                seen.setdefault(sample.track, None)
        return list(seen)

    def spans_on(self, track: str) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.track == track]

    def summary(
        self,
        with_counters: bool = False,
        by_track: bool = False,
        with_elapsed: bool = False,
    ) -> dict[str, Any]:
        """The Figure 3 four-segment breakdown, from raw cost spans.

        Returns ``{"to_device", "from_device", "kernel", "overhead"}``
        in nanoseconds — the same vocabulary (and, for a run measured by
        the harness, the same totals) as
        :meth:`repro.opencl.costmodel.CostLedger.breakdown`.

        With ``with_counters=True`` a ``"counters"`` key is added
        holding the run's scheduler and cache statistics — the
        ``kcache.*`` kernel-cache events, ``queue.*`` out-of-order
        scheduling gains, and ``dispatch.*`` execution-tier events
        (multi-device splits, ``dispatch.fallback.<reason>`` demotions,
        ``dispatch.compact``/``dispatch.compact.rounds`` lane
        compaction, ``dispatch.cse.hits`` common-subexpression reuse) —
        so per-run behaviour is reportable next to the cost segments
        without disturbing the four-key shape existing consumers
        pattern-match on.

        With ``by_track=True`` a ``"tracks"`` key is added mapping each
        track (e.g. ``device/<name>``) to its own four-segment
        sub-breakdown, which makes per-device costs of a multi-device
        dispatch directly visible.

        With ``with_elapsed=True`` an ``"elapsed"`` key is added with
        the schedule-aware end-to-end view from the current clock's
        composed timeline (the axis the ``sched.*`` spans' additional
        ``e2e_start_ns`` arg aligns to): ``elapsed_ns`` (critical-path
        end-to-end time) plus its exact wall-time attribution —
        ``transfer`` / ``compute`` / ``api`` / ``overlap`` / ``idle``.
        Unlike the four busy-time segments above, these describe
        *coverage*: a nanosecond with transfers and kernels both in
        flight is one ``overlap`` nanosecond, not two busy ones.  Read
        it while the measured run's clock is still current (inside the
        same ``fresh_clock()`` / before the next ledger reset).
        """
        totals: dict[str, Any] = {
            segment: 0.0 for segment in SEGMENT_OF.values()
        }
        tracks: dict[str, dict[str, float]] = {}
        with self._lock:
            for span in self.spans:
                if span.cost:
                    segment = SEGMENT_OF[span.category]
                    totals[segment] += span.dur_ns
                    if by_track:
                        sub = tracks.setdefault(
                            span.track,
                            {s: 0.0 for s in SEGMENT_OF.values()},
                        )
                        sub[segment] += span.dur_ns
        if with_counters:
            totals["counters"] = {
                name: value
                for name, value in self.counters().items()
                if name.startswith(
                    ("kcache.", "queue.", "dispatch.", "fault.", "actor.")
                )
            }
        if by_track:
            totals["tracks"] = tracks
        if with_elapsed:
            totals["elapsed"] = _elapsed_section()
        return totals


class NullTracer:
    """The zero-overhead default: every operation is a no-op."""

    enabled = False
    spans: list = []
    counter_samples: list = []

    def cost_span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def struct_span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def span(self, *args: Any, **kwargs: Any) -> _NullSpanHandle:
        return _NULL_SPAN

    def count(self, *args: Any, **kwargs: Any) -> float:
        return 0.0

    def counter(self, name: str) -> float:
        return 0.0

    def counters(self) -> dict[str, float]:
        return {}

    def tracks(self) -> list[str]:
        return []

    def spans_on(self, track: str) -> list:
        return []

    def summary(
        self,
        with_counters: bool = False,
        by_track: bool = False,
        with_elapsed: bool = False,
    ) -> dict[str, Any]:
        totals: dict[str, Any] = {
            segment: 0.0 for segment in SEGMENT_OF.values()
        }
        if with_counters:
            totals["counters"] = {}
        if by_track:
            totals["tracks"] = {}
        if with_elapsed:
            totals["elapsed"] = {
                segment: 0.0 for segment in _ELAPSED_KEYS
            }
            totals["elapsed"]["elapsed_ns"] = 0.0
        return totals


NULL_TRACER = NullTracer()

_current: Tracer | NullTracer = NULL_TRACER
_current_lock = threading.Lock()


def current_tracer() -> Tracer | NullTracer:
    """The tracer instrumented code reports to (default: no-op)."""
    return _current


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install *tracer* globally; returns the previous one."""
    global _current
    with _current_lock:
        previous = _current
        _current = tracer
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the dynamic extent of the block::

        with tracing() as tr:
            outcome = matmul.run_ensemble(n=32)
        tr.summary()   # == outcome.breakdown
    """
    active = tracer if tracer is not None else Tracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
