"""Chrome trace-event JSON export.

Produces the ``traceEvents`` format understood by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``: complete events
(``ph: "X"``) for spans, counter events (``ph: "C"``) for counter
samples, and metadata events (``ph: "M"``) naming processes and
threads.

Track names of the form ``"group/detail"`` map to one *process* per
group (``device``, ``vm``, ``actor``, ...) and one *thread* per full
track, so e.g. every device gets its own named row under the "device"
process.  Timestamps are microseconds (the format's unit), converted
from the tracer's simulated nanoseconds.
"""

from __future__ import annotations

import json
from typing import Union

from .tracer import NullTracer, Tracer


def _split_track(track: str) -> tuple[str, str]:
    group, sep, detail = track.partition("/")
    if not sep:
        return track, track
    return group, detail or track


def chrome_trace_events(tracer: Union[Tracer, NullTracer]) -> list[dict]:
    """The run as a list of Chrome trace-event dicts."""
    pids: dict[str, int] = {}
    tids: dict[str, int] = {}
    events: list[dict] = []

    def ids_for(track: str) -> tuple[int, int]:
        group, detail = _split_track(track)
        if group not in pids:
            pids[group] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pids[group],
                    "tid": 0,
                    "args": {"name": group},
                }
            )
        if track not in tids:
            tids[track] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pids[group],
                    "tid": tids[track],
                    "args": {"name": detail},
                }
            )
        return pids[group], tids[track]

    for span in list(tracer.spans):
        pid, tid = ids_for(span.track)
        event = {
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": span.ts_ns / 1000.0,
            "dur": span.dur_ns / 1000.0,
            "pid": pid,
            "tid": tid,
            "args": dict(span.args, cost=span.cost),
        }
        events.append(event)
    for sample in list(tracer.counter_samples):
        pid, tid = ids_for(sample.track)
        events.append(
            {
                "name": sample.name,
                "cat": "counter",
                "ph": "C",
                "ts": sample.ts_ns / 1000.0,
                "pid": pid,
                "tid": tid,
                "args": {"value": sample.value},
            }
        )
    return events


def chrome_trace(tracer: Union[Tracer, NullTracer]) -> dict:
    """The full JSON-object form (Perfetto accepts both forms)."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.trace",
            "summary_ns": tracer.summary(),
            "counters": tracer.counters(),
        },
    }


def write_chrome_trace(
    tracer: Union[Tracer, NullTracer], path
) -> None:
    """Serialise the run to *path* as Perfetto-loadable JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer), fh, indent=1)
        fh.write("\n")
