"""Static analysis helpers over kernel IR for the pragma compiler."""

from __future__ import annotations

import copy
from typing import Iterable

from .. import kir


def declared_names(stmts: Iterable[kir.Stmt]) -> set[str]:
    """Names declared anywhere inside *stmts* (incl. loop variables)."""
    out: set[str] = set()
    for st in kir.walk_stmts(list(stmts)):
        if isinstance(st, kir.Decl):
            out.add(st.name)
        elif isinstance(st, kir.For):
            out.add(st.var)
    return out


def used_vars(stmts: Iterable[kir.Stmt]) -> dict[str, "kir.Type | None"]:
    """Every Var name referenced in *stmts*, with its annotated type."""
    out: dict[str, kir.Type | None] = {}
    for st in kir.walk_stmts(list(stmts)):
        for e in kir.walk_exprs(st):
            if isinstance(e, kir.Var):
                if e.name not in out or out[e.name] is None:
                    out[e.name] = e.type
    return out


def free_vars(stmts: list[kir.Stmt]) -> dict[str, "kir.Type | None"]:
    """Variables read by *stmts* but not declared within them."""
    declared = declared_names(stmts)
    return {
        name: typ
        for name, typ in used_vars(stmts).items()
        if name not in declared
    }


def assigned_scalars(stmts: list[kir.Stmt]) -> set[str]:
    """Names scalar-assigned anywhere inside *stmts*."""
    out: set[str] = set()
    for st in kir.walk_stmts(list(stmts)):
        if isinstance(st, kir.Assign):
            out.add(st.name)
    return out


def written_array_names(stmts: list[kir.Stmt]) -> set[str]:
    out: set[str] = set()
    for st in kir.walk_stmts(list(stmts)):
        if isinstance(st, kir.Store) and isinstance(st.base, kir.Var):
            out.add(st.base.name)
    return out


def read_array_names(stmts: list[kir.Stmt]) -> set[str]:
    out: set[str] = set()
    for st in kir.walk_stmts(list(stmts)):
        for e in kir.walk_exprs(st):
            if isinstance(e, kir.Index) and isinstance(e.base, kir.Var):
                out.add(e.base.name)
    return out


def has_break(stmts: list[kir.Stmt]) -> bool:
    """True when a ``break`` would leave the *outermost* loop level.

    Breaks inside nested loops are fine; a top-level break makes the
    iteration count data-dependent, so the loop cannot be a kernel.
    """

    def scan(block: list[kir.Stmt]) -> bool:
        for st in block:
            if isinstance(st, kir.Break):
                return True
            if isinstance(st, kir.If):
                if scan(st.then) or scan(st.orelse):
                    return True
            # For/While bodies swallow their own breaks.
        return False

    return scan(stmts)


def calls_user_functions(
    stmts: list[kir.Stmt], module: kir.Module
) -> list[str]:
    """User-defined functions invoked inside *stmts*."""
    found: list[str] = []
    for st in kir.walk_stmts(list(stmts)):
        for e in kir.walk_exprs(st):
            if isinstance(e, kir.Call) and e.name in module.functions:
                found.append(e.name)
    return found


def rename_vars(stmts: list[kir.Stmt], mapping: dict[str, str]) -> list[kir.Stmt]:
    """Deep-copy *stmts* with variable names substituted per *mapping*.

    Used by the reduction transform to redirect the reduction variable
    onto a private accumulator.
    """
    cloned = copy.deepcopy(stmts)
    for st in kir.walk_stmts(cloned):
        if isinstance(st, kir.Decl) and st.name in mapping:
            st.name = mapping[st.name]
        elif isinstance(st, kir.Assign) and st.name in mapping:
            st.name = mapping[st.name]
        elif isinstance(st, kir.For) and st.var in mapping:
            st.var = mapping[st.var]
        for e in kir.walk_exprs(st):
            if isinstance(e, kir.Var) and e.name in mapping:
                e.name = mapping[e.name]
    return cloned
