"""Execution engine for pragma-compiled programs.

Host statements run through the kir reference interpreter (sequential C
semantics, priced at a fixed host throughput); when execution reaches an
annotated loop the engine dispatches the generated kernel on the target
device instead, moving data per the directive's data clauses.

Data movement semantics match OpenACC:

* outside any ``data`` region, every ``parallel loop`` copies its inputs
  to the device on entry and its outputs back on exit — *every time the
  region executes*;
* inside a ``data`` region, the listed arrays are device-resident for
  the region's dynamic extent and the enclosed loops reuse the buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..errors import AccError
from .. import kcache, kir
from ..kir.interp import Interpreter
from ..opencl import Buffer, CommandQueue, Context, CostLedger, Device
from ..opencl.dispatch import dispatch_kernel_ns
from ..opencl.platform import find_device
from .compiler import AccModule, DataRegion, LoopRegion, compile_acc

#: Sequential host code throughput (ops per simulated nanosecond) — a
#: single superscalar core running -O2 C (IPC ~3 at 3.3 GHz; one kir op
#: often maps to less than one machine instruction after optimisation).
#: Shared with the single-threaded baselines via the harness.
HOST_OPS_PER_NS = 10.0

_REDUCE_COMBINE = {
    "min": min,
    "max": max,
    "+": lambda a, b: a + b,
}


@dataclass
class AccResult:
    value: Any
    ledger: CostLedger
    host_ops: int
    report: list[str]

    @property
    def total_ns(self) -> float:
        return self.ledger.total_ns


class _AccExecutor(Interpreter):
    """Interpreter that intercepts annotated statements."""

    def __init__(
        self,
        acc: AccModule,
        device: Device,
        context: Context,
        queue: CommandQueue,
    ) -> None:
        super().__init__(acc.module)
        self.acc = acc
        self.device = device
        self.context = context
        self.queue = queue
        # Region kernels compile through the content-addressed cache, so
        # re-running the same pragma program (benchmark repetitions)
        # skips the Python codegen wall-clock cost.
        self.compiled_kernels = kcache.get_or_build_module(acc.kernels) if (
            acc.kernels.functions
        ) else None
        # id(host list) -> Buffer, for arrays inside data regions.
        self.resident: dict[int, Buffer] = {}

    # -- interception ---------------------------------------------------

    def _exec_stmt(self, st, env, wi, local_mem) -> Iterator[None]:
        loop = self.acc.loop_regions.get(id(st))
        if loop is not None and loop.kind != "sequential":
            self._run_region(loop, env)
            return
            yield  # pragma: no cover - keeps this a generator
        data = self.acc.data_regions.get(id(st))
        if data is not None:
            self._enter_data(data, env)
            try:
                yield from super()._exec_stmt(st, env, wi, local_mem)
            finally:
                self._exit_data(data, env)
            return
        yield from super()._exec_stmt(st, env, wi, local_mem)

    # -- data regions ------------------------------------------------------

    def _array(self, name: str, env: dict) -> list:
        value = env.get(name)
        if not isinstance(value, list):
            raise AccError(f"data clause names non-array {name!r}")
        return value

    def _enter_data(self, region: DataRegion, env: dict) -> None:
        for name in region.copy + region.copyin + region.copyout:
            host = self._array(name, env)
            if id(host) in self.resident:
                continue
            buf = Buffer(self.context, len(host), _dtype_of(host))
            if name not in region.copyout:
                self.queue.enqueue_write_buffer(buf, host)
            self.resident[id(host)] = buf

    def _exit_data(self, region: DataRegion, env: dict) -> None:
        for name in region.copy + region.copyout:
            host = self._array(name, env)
            buf = self.resident.get(id(host))
            if buf is not None:
                self.queue.enqueue_read_buffer(buf, host)
        for name in region.copy + region.copyin + region.copyout:
            host = self._array(name, env)
            buf = self.resident.pop(id(host), None)
            if buf is not None and not buf.released:
                buf.release()

    # -- parallel regions ---------------------------------------------------

    def _run_region(self, region: LoopRegion, env: dict) -> None:
        stmt = region.stmt
        assert isinstance(stmt, kir.For)
        start = self._eval(stmt.start, env, None)
        stop = self._eval(stmt.stop, env, None)
        trip = max(0, stop - start)
        if trip == 0:
            return

        # Bind buffers (resident ones move nothing).
        temp_buffers: list[tuple[str, list, Buffer, bool]] = []
        args: list[Any] = []
        for name in region.arrays:
            host = self._array(name, env)
            buf = self.resident.get(id(host))
            if buf is None:
                buf = Buffer(self.context, len(host), _dtype_of(host))
                if name in region.arrays_in or not region.arrays_in:
                    self.queue.enqueue_write_buffer(buf, host)
                readback = name in region.arrays_out
                temp_buffers.append((name, host, buf, readback))
            args.append(buf)
        for name in region.scalars:
            if name not in env:
                raise AccError(f"scalar {name!r} not in scope at region")
            args.append(env[name])

        if region.kind == "reduction":
            self._run_reduction(region, env, args, start, stop, trip)
        else:
            args.append(start)
            args.append(stop)
            gsz = trip
            if region.collapse:
                inner = stmt.body[0]
                assert isinstance(inner, kir.For)
                start1 = self._eval(inner.start, env, None)
                stop1 = self._eval(inner.stop, env, None)
                args.extend([start1, stop1])
                gsz = trip * max(0, stop1 - start1)
            lsz = min(region.local_size, self.device.spec.max_work_group_size)
            gsz_padded = _round_up(gsz, lsz)
            assert self.compiled_kernels is not None
            runner = self.compiled_kernels.kernel_runner(region.kernel_name)
            ns = dispatch_kernel_ns(
                runner, self.device.spec, args, [gsz_padded], [lsz]
            )
            start = self.device.schedule_ns(self.context.clock.now_ns, ns)
            self.context.charge(
                "kernel",
                ns,
                name=f"acc:{region.kernel_name}",
                track=f"device/{self.device.name}",
                ts_ns=start,
                args={"global_size": gsz_padded, "local_size": lsz},
            )
            with self.context.ledger._lock:
                self.context.ledger.kernel_launches += 1

        # Per-region copy-out for non-resident arrays.
        for name, host, buf, readback in temp_buffers:
            if readback:
                self.queue.enqueue_read_buffer(buf, host)
            buf.release()

    def _run_reduction(
        self,
        region: LoopRegion,
        env: dict,
        args: list,
        start: int,
        stop: int,
        trip: int,
    ) -> None:
        op, var = region.reduction  # type: ignore[misc]
        if var not in env:
            raise AccError(f"reduction variable {var!r} not in scope")
        initial = env[var]
        if region.pragma.num_gangs:
            gangs = region.pragma.num_gangs
        elif region.pragma.tuned:
            gangs = 2 * self.device.spec.compute_units
        else:
            # Annotating the sequential loop is not enough (paper,
            # Section 7.4): without explicit tuning the compiler
            # serialises the reduction loop on the device.
            gangs = 1
        gangs = max(1, min(gangs, trip))
        seed = 0 if op == "+" else initial
        partial_host = [seed] * gangs
        partial = Buffer(
            self.context, gangs, "int" if isinstance(seed, int) else "float"
        )
        self.queue.enqueue_write_buffer(partial, partial_host)
        args = list(args) + [partial]
        assert self.compiled_kernels is not None
        runner = self.compiled_kernels.kernel_runner(region.kernel_name)
        ns = dispatch_kernel_ns(runner, self.device.spec, args, [gangs], [1])
        start = self.device.schedule_ns(self.context.clock.now_ns, ns)
        self.context.charge(
            "kernel",
            ns,
            name=f"acc:{region.kernel_name}",
            track=f"device/{self.device.name}",
            ts_ns=start,
            args={"gangs": gangs},
        )
        with self.context.ledger._lock:
            self.context.ledger.kernel_launches += 1
        self.queue.enqueue_read_buffer(partial, partial_host)
        partial.release()
        combine = _REDUCE_COMBINE[op]
        result = initial
        for value in partial_host:
            result = combine(result, value)
            self.ops += 2
        env[var] = result


def _dtype_of(host: list) -> str:
    for value in host:
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, float):
            return "float"
        if isinstance(value, int):
            return "int"
    return "float"


def _round_up(value: int, multiple: int) -> int:
    if multiple <= 1:
        return value
    return ((value + multiple - 1) // multiple) * multiple


class AccProgram:
    """A pragma-annotated program, compiled and ready to run.

    Raises :class:`~repro.errors.AccUnsupportedError` at construction for
    source the pragma compiler cannot handle (the paper's PGI failure
    mode on document ranking).
    """

    def __init__(
        self,
        source: str,
        device_type: str = "GPU",
        openmp: bool = False,
    ) -> None:
        # OpenMP host compilation (the paper's gcc CPU path) tolerates
        # function calls in parallel regions; the acc GPU path does not.
        self.acc = compile_acc(source, allow_calls=openmp)
        self.device_type = device_type

    @property
    def report(self) -> list[str]:
        return self.acc.report

    def run(
        self, function: str, args: list, device: Optional[Device] = None
    ) -> AccResult:
        device = device or find_device(self.device_type)
        context = Context([device])
        queue = CommandQueue(context, device)
        executor = _AccExecutor(self.acc, device, context, queue)
        value = executor.call(function, args)
        host_ns = executor.ops / HOST_OPS_PER_NS
        context.charge(
            "host", host_ns, name="acc.host", args={"ops": executor.ops}
        )
        return AccResult(
            value=value,
            ledger=context.ledger,
            host_ops=executor.ops,
            report=self.acc.report,
        )
