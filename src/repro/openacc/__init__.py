"""OpenACC/OpenMP pragma baseline (the paper's C-OpenACC comparator)."""

from .compiler import AccCompiler, AccModule, LoopRegion, compile_acc  # noqa: F401
from .pragmas import Pragma, parse_pragma  # noqa: F401
from .runtime import AccProgram, AccResult, HOST_OPS_PER_NS  # noqa: F401
