"""The pragma compiler: turn annotated kernel-C loops into device kernels.

Behaviour mirrors what the paper reports of the PGI OpenACC compiler:

* an annotated canonical loop whose body has no loop-carried scalar
  writes becomes a 1-D kernel over the outer iterations (``collapse(2)``
  linearises two levels — still a 1-D decomposition: the generated code
  cannot exploit the 2-D thread geometry the way a hand-written kernel
  can, Section 7.4);
* without the non-trivial ``gang``/``worker``/``vector`` clauses the
  generated schedule uses single-iteration gangs (work-group size 1);
  with them it uses the default vector length of 256 — coarse linear
  work-groups that balance poorly under divergence, unlike a
  hand-chosen 2-D tiling;
* ``reduction(op:var)`` produces a strided two-level reduction with one
  partial per gang and a sequential host combine — much less parallel
  than the hand-written tree reduction of Figure 3d;
* loops with data-dependent scalar flow, top-level breaks, or
  non-canonical headers are **not** parallelised — sequential host code
  is generated instead ("there is no guarantee that the compiler will be
  able to generate an effective parallel strategy");
* calls to user functions inside an annotated region abort compilation
  (the paper's PGI compiler could not compile the document-ranking
  source at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import AccError, AccUnsupportedError
from .. import kir
from ..kernelc.parser import Parser
from ..kernelc.typecheck import typecheck
from .analysis import (
    assigned_scalars,
    calls_user_functions,
    declared_names,
    free_vars,
    has_break,
    read_array_names,
    rename_vars,
    written_array_names,
)
from .pragmas import Pragma, parse_pragma

_REDUCE_INIT = {"min": None, "max": None, "+": 0}  # None: seed from host value


@dataclass
class LoopRegion:
    """One annotated loop and the kernel generated for it."""

    pragma: Pragma
    stmt: kir.Stmt
    kind: str  # 'kernel' | 'reduction' | 'sequential'
    kernel_name: str = ""
    arrays: list[str] = field(default_factory=list)
    arrays_in: list[str] = field(default_factory=list)
    arrays_out: list[str] = field(default_factory=list)
    scalars: list[str] = field(default_factory=list)
    loop_var: str = ""
    inner_var: str = ""
    collapse: bool = False
    reduction: Optional[tuple[str, str]] = None
    local_size: int = 1
    reason: str = ""


@dataclass
class DataRegion:
    pragma: Pragma
    stmt: kir.Stmt
    copy: list[str] = field(default_factory=list)
    copyin: list[str] = field(default_factory=list)
    copyout: list[str] = field(default_factory=list)


@dataclass
class AccModule:
    """Result of pragma compilation."""

    module: kir.Module  # the original host program (typed)
    kernels: kir.Module  # generated device kernels
    loop_regions: dict[int, LoopRegion]  # keyed by id(stmt)
    data_regions: dict[int, DataRegion]
    report: list[str] = field(default_factory=list)


def _int_const(value: int) -> kir.Const:
    return kir.Const(int(value))


def _ivar(name: str) -> kir.Var:
    var = kir.Var(name)
    var.type = kir.INT_T
    return var


def _ibin(op: str, left: kir.Expr, right: kir.Expr) -> kir.BinOp:
    node = kir.BinOp(op, left, right)
    node.type = kir.INT_T
    return node


class AccCompiler:
    def __init__(self, source: str, allow_calls: bool = False) -> None:
        self.source = source
        self.allow_calls = allow_calls
        parser = Parser(source)
        self.module = parser.parse_module()
        typecheck(self.module)
        self.directives = parser.directives
        self.kernels = kir.Module()
        self.loop_regions: dict[int, LoopRegion] = {}
        self.data_regions: dict[int, DataRegion] = {}
        self.report: list[str] = []
        self._kernel_counter = 0

    # -- directive association ---------------------------------------------

    def _stmt_lines(self) -> list[tuple[int, kir.Stmt]]:
        pairs: list[tuple[int, kir.Stmt]] = []
        for fn in self.module.functions.values():
            for st in kir.walk_stmts(fn.body):
                line = getattr(st, "line", None)
                if line is not None:
                    pairs.append((line, st))
        pairs.sort(key=lambda item: item[0])
        return pairs

    def _target_for(self, pragma: Pragma, pairs) -> kir.Stmt:
        candidates = [st for line, st in pairs if line > pragma.line]
        if not candidates:
            raise AccError(
                f"pragma at line {pragma.line} has no following statement"
            )
        return candidates[0]

    # -- compilation -----------------------------------------------------------

    def compile(self) -> AccModule:
        pairs = self._stmt_lines()
        for directive in self.directives:
            pragma = parse_pragma(directive.text, directive.line)
            if pragma is None:
                continue
            target = self._target_for(pragma, pairs)
            if pragma.kind == "data":
                self.data_regions[id(target)] = DataRegion(
                    pragma,
                    target,
                    copy=list(pragma.copy),
                    copyin=list(pragma.copyin),
                    copyout=list(pragma.copyout),
                )
                self.report.append(
                    f"line {pragma.line}: data region "
                    f"copy={pragma.copy} copyin={pragma.copyin} "
                    f"copyout={pragma.copyout}"
                )
                continue
            region = self._compile_loop(pragma, target)
            self.loop_regions[id(target)] = region
            self.report.append(
                f"line {pragma.line}: {region.kind}"
                + (f" ({region.reason})" if region.reason else "")
            )
        return AccModule(
            self.module,
            self.kernels,
            self.loop_regions,
            self.data_regions,
            self.report,
        )

    def _compile_loop(self, pragma: Pragma, stmt: kir.Stmt) -> LoopRegion:
        if not isinstance(stmt, kir.For):
            return LoopRegion(
                pragma,
                stmt,
                "sequential",
                reason="annotated statement is not a canonical for loop",
            )
        body = stmt.body
        called = calls_user_functions(body, self.module)
        if called and not self.allow_calls:
            # The paper: the PGI compiler was not able to compile the
            # document-ranking source at all.  (OpenMP host compilation —
            # allow_calls=True — accepts it, matching the paper's
            # gcc-compiled CPU fallback.)
            raise AccUnsupportedError(
                f"line {pragma.line}: cannot generate device code for "
                f"calls to {sorted(set(called))} inside a parallel region"
            )
        if called:
            for fname in called:
                if fname not in self.kernels.functions:
                    self.kernels.add(self.module.functions[fname])
        if has_break(body):
            return LoopRegion(
                pragma,
                stmt,
                "sequential",
                reason="loop exits early (break) — data-dependent trip count",
            )
        if not isinstance(stmt.step, kir.Const) or stmt.step.value != 1:
            return LoopRegion(
                pragma, stmt, "sequential", reason="non-unit loop step"
            )
        reduction_vars = {var for _, var in pragma.reduction}
        loop_carried = (
            assigned_scalars(body) - declared_names(body) - {stmt.var}
            - reduction_vars
        )
        if loop_carried:
            return LoopRegion(
                pragma,
                stmt,
                "sequential",
                reason=(
                    "loop-carried scalar dependency on "
                    f"{sorted(loop_carried)} — sequential code generated"
                ),
            )
        carried_arrays = _carried_array_deps(body, stmt.var)
        if carried_arrays:
            # The paper's failure case: a data dependency across
            # iterations (e.g. a[i] = a[i-1] + ...) — the compiler emits
            # sequential code instead of a kernel.
            return LoopRegion(
                pragma,
                stmt,
                "sequential",
                reason=(
                    "loop-carried array dependency on "
                    f"{sorted(carried_arrays)} — sequential code generated"
                ),
            )
        if pragma.reduction:
            if len(pragma.reduction) != 1:
                return LoopRegion(
                    pragma, stmt, "sequential",
                    reason="multiple reduction variables",
                )
            return self._reduction_kernel(pragma, stmt)
        return self._parallel_kernel(pragma, stmt)

    # -- plain parallel loop -------------------------------------------------

    def _parallel_kernel(self, pragma: Pragma, stmt: kir.For) -> LoopRegion:
        collapse = False
        inner: Optional[kir.For] = None
        body = stmt.body
        if pragma.collapse >= 2:
            if (
                len(body) == 1
                and isinstance(body[0], kir.For)
                and isinstance(body[0].step, kir.Const)
                and body[0].step.value == 1
            ):
                inner = body[0]
                collapse = True
            # collapse requested but not applicable: fall through 1-D.

        name = self._fresh_kernel_name()
        # Irregular (while-)loops defeat the pragma compiler's
        # vectoriser: the generated schedule falls back to one iteration
        # per gang even when gang/worker/vector clauses are given — the
        # paper's Mandelbrot result ("much worse performance ... even
        # when using the fine-grained gangs and worker annotations").
        irregular = any(
            isinstance(st, kir.While) for st in kir.walk_stmts(stmt.body)
        )
        loop_vars = {stmt.var}
        kernel_body: list[kir.Stmt] = []
        guard_var = "__gid"
        gid_call = kir.Call("get_global_id", [_int_const(0)])
        gid_call.type = kir.INT_T
        kernel_body.append(kir.Decl(guard_var, kir.INT_T, init=gid_call))

        if collapse and inner is not None:
            loop_vars.add(inner.var)
            region_body = inner.body
            trip1 = _ibin("-", _ivar("__stop1"), _ivar("__start1"))
            total = _ibin(
                "*",
                _ibin("-", _ivar("__stop0"), _ivar("__start0")),
                trip1,
            )
            outer_idx = _ibin(
                "+",
                _ivar("__start0"),
                _ibin("/", _ivar(guard_var), trip1),
            )
            inner_idx = _ibin(
                "+",
                _ivar("__start1"),
                _ibin("%", _ivar(guard_var), trip1),
            )
            guarded: list[kir.Stmt] = [
                kir.Decl(stmt.var, kir.INT_T, init=outer_idx),
                kir.Decl(inner.var, kir.INT_T, init=inner_idx),
                *region_body,
            ]
            kernel_body.append(
                kir.If(_ibin("<", _ivar(guard_var), total), guarded)
            )
        else:
            region_body = body
            idx = _ibin("+", _ivar("__start0"), _ivar(guard_var))
            guarded = [
                kir.Decl(stmt.var, kir.INT_T, init=idx),
                *region_body,
            ]
            bound = _ibin("<", _ivar(stmt.var + "__acc_probe"), _int_const(0))
            # guard: start0 + gid < stop0
            cond = _ibin(
                "<", _ibin("+", _ivar("__start0"), _ivar(guard_var)),
                _ivar("__stop0"),
            )
            kernel_body.append(kir.If(cond, guarded))

        scan_body = region_body if not collapse else inner.body
        free = free_vars(stmt.body)
        arrays = sorted(
            n for n, t in free.items() if isinstance(t, kir.ArrayType)
        )
        scalars = sorted(
            n
            for n, t in free.items()
            if not isinstance(t, kir.ArrayType) and n not in loop_vars
        )
        params = [
            kir.Param(n, _as_global(free[n])) for n in arrays
        ] + [
            kir.Param(n, free[n] or kir.INT_T) for n in scalars
        ] + [
            kir.Param("__start0", kir.INT_T),
            kir.Param("__stop0", kir.INT_T),
        ]
        if collapse:
            params += [
                kir.Param("__start1", kir.INT_T),
                kir.Param("__stop1", kir.INT_T),
            ]
        fn = kir.Function(name, params, kir.VOID, kernel_body, is_kernel=True)
        self.kernels.add(fn)

        written = written_array_names(stmt.body)
        read = read_array_names(stmt.body)
        region = LoopRegion(
            pragma,
            stmt,
            "kernel",
            kernel_name=name,
            arrays=arrays,
            arrays_in=sorted(
                (set(pragma.copy) | set(pragma.copyin)) & set(arrays)
            )
            or sorted(read & set(arrays)),
            arrays_out=sorted(
                (set(pragma.copy) | set(pragma.copyout)) & set(arrays)
            )
            or sorted(written & set(arrays)),
            scalars=scalars,
            loop_var=stmt.var,
            inner_var=inner.var if inner is not None else "",
            collapse=collapse,
            local_size=1 if irregular else (256 if pragma.tuned else 1),
        )
        return region

    # -- reduction loop --------------------------------------------------------

    def _reduction_kernel(self, pragma: Pragma, stmt: kir.For) -> LoopRegion:
        op, var = pragma.reduction[0]
        acc = "__acc"
        body = rename_vars(stmt.body, {var: acc})
        # Include the loop header's bounds: the generated kernel keeps the
        # strided loop, so names in start/stop become parameters too.
        free = free_vars([stmt])
        red_type = free.get(var) or kir.FLOAT_T
        if isinstance(red_type, kir.ArrayType):
            raise AccError(f"reduction variable {var!r} is an array")

        name = self._fresh_kernel_name()
        arrays = sorted(
            n
            for n, t in free.items()
            if isinstance(t, kir.ArrayType)
        )
        scalars = sorted(
            n
            for n, t in free.items()
            if not isinstance(t, kir.ArrayType)
            and n not in (var, stmt.var)
        )
        gid_call = kir.Call("get_global_id", [_int_const(0)])
        gid_call.type = kir.INT_T
        gsz_call = kir.Call("get_global_size", [_int_const(0)])
        gsz_call.type = kir.INT_T
        partial = kir.Var("__partial")
        partial.type = kir.ArrayType(
            red_type if isinstance(red_type, kir.ScalarType) else kir.FLOAT_T,
            kir.GLOBAL,
        )
        init_load = kir.Index(partial, _ivar("__g"))
        init_load.type = red_type
        kernel_body: list[kir.Stmt] = [
            kir.Decl("__g", kir.INT_T, init=gid_call),
            kir.Decl("__stride", kir.INT_T, init=gsz_call),
            kir.Decl(acc, red_type, init=init_load),
            kir.For(
                stmt.var,
                _ibin("+", _clone_typed(stmt.start), _ivar("__g")),
                _clone_typed(stmt.stop),
                _ivar("__stride"),
                body,
            ),
            kir.Store(partial, _ivar("__g"), _typed_var(acc, red_type)),
        ]
        params = (
            [kir.Param(n, _as_global(free[n])) for n in arrays]
            + [kir.Param(n, free[n] or kir.INT_T) for n in scalars]
            + [
                kir.Param(
                    "__partial",
                    kir.ArrayType(red_type, kir.GLOBAL),
                )
            ]
        )
        fn = kir.Function(name, params, kir.VOID, kernel_body, is_kernel=True)
        self.kernels.add(fn)
        return LoopRegion(
            pragma,
            stmt,
            "reduction",
            kernel_name=name,
            arrays=arrays,
            arrays_in=sorted(
                (set(pragma.copy) | set(pragma.copyin)) & set(arrays)
            )
            or arrays,
            arrays_out=[],
            scalars=scalars,
            loop_var=stmt.var,
            reduction=(op, var),
            local_size=1,
        )

    def _fresh_kernel_name(self) -> str:
        self._kernel_counter += 1
        return f"__acc_kernel_{self._kernel_counter}"


def _carried_array_deps(body: list[kir.Stmt], loop_var: str) -> set[str]:
    """Arrays written in *body* and also read at an iteration-shifted
    index (``a[i - 1]`` style) — a loop-carried dependence the pragma
    compiler refuses to parallelise.  This is a syntactic test, the kind
    of conservative analysis the paper's discussion of OpenACC's limits
    refers to; it deliberately accepts LUD-style ``m[i*n+k]`` accesses
    where the loop variable is not additively shifted.
    """

    def shifted(expr: kir.Expr) -> bool:
        for node in kir.walk_exprs(expr):
            if (
                isinstance(node, kir.BinOp)
                and node.op in ("+", "-")
                and (
                    (
                        isinstance(node.left, kir.Var)
                        and node.left.name == loop_var
                        and isinstance(node.right, kir.Const)
                    )
                    or (
                        isinstance(node.right, kir.Var)
                        and node.right.name == loop_var
                        and isinstance(node.left, kir.Const)
                    )
                )
            ):
                return True
        return False

    written = written_array_names(body)
    out: set[str] = set()
    for st in kir.walk_stmts(body):
        for e in kir.walk_exprs(st):
            if (
                isinstance(e, kir.Index)
                and isinstance(e.base, kir.Var)
                and e.base.name in written
                and shifted(e.index)
            ):
                out.add(e.base.name)
    return out


def _as_global(typ) -> kir.ArrayType:
    assert isinstance(typ, kir.ArrayType)
    if typ.space == kir.GLOBAL:
        return typ
    return kir.ArrayType(typ.element, kir.GLOBAL)


def _clone_typed(expr: kir.Expr) -> kir.Expr:
    import copy as _copy

    return _copy.deepcopy(expr)


def _typed_var(name: str, typ) -> kir.Var:
    var = kir.Var(name)
    var.type = typ
    return var


def compile_acc(source: str, allow_calls: bool = False) -> AccModule:
    """Compile OpenACC/OpenMP-annotated kernel-C *source*."""
    return AccCompiler(source, allow_calls=allow_calls).compile()
