"""Parsing of ``#pragma acc`` / ``#pragma omp`` directive lines.

Supported forms (the subset the paper's applications use):

* ``#pragma acc parallel loop [clauses]`` — parallelise the next loop
* ``#pragma acc kernels [clauses]`` — treated like ``parallel loop``
* ``#pragma acc data <dataclauses>`` — device-data region over the next
  statement (arrays stay resident for its dynamic extent)
* ``#pragma omp parallel for [clauses]`` — the CPU annotation (the paper
  used OpenMP pragmas for CPU targets via the same PGI compiler)

Clauses: ``copy(a, b)``, ``copyin(...)``, ``copyout(...)``,
``reduction(op:var)``, ``collapse(n)``, ``gang``, ``worker``,
``vector``, ``num_gangs(n)``.  Array section syntax ``a[0:n]`` is
accepted and the range ignored (the runtime knows buffer sizes).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import AccError

_CLAUSE_RE = re.compile(r"([a-z_]+)\s*(\(([^()]*)\))?", re.IGNORECASE)


@dataclass
class Pragma:
    """One parsed directive."""

    kind: str  # 'parallel_loop' | 'data'
    line: int
    text: str
    copy: list[str] = field(default_factory=list)
    copyin: list[str] = field(default_factory=list)
    copyout: list[str] = field(default_factory=list)
    reduction: list[tuple[str, str]] = field(default_factory=list)
    collapse: int = 1
    gang: bool = False
    worker: bool = False
    vector: bool = False
    num_gangs: int = 0

    @property
    def tuned(self) -> bool:
        """True when the non-trivial gang/worker/vector annotations were
        supplied (the paper: 'requiring use of the non-trivial gangs and
        worker annotations')."""
        return self.gang or self.worker or self.vector


def _names(arg: str) -> list[str]:
    out = []
    for part in arg.split(","):
        part = part.strip()
        if not part:
            continue
        # strip array-section suffixes: a[0:n] -> a
        name = part.split("[")[0].strip()
        if not name.isidentifier():
            raise AccError(f"bad name in data clause: {part!r}")
        out.append(name)
    return out


def parse_pragma(text: str, line: int) -> "Pragma | None":
    """Parse one ``#...`` line; returns None for non-acc/omp directives."""
    body = text.lstrip("#").strip()
    if body.startswith("pragma"):
        body = body[len("pragma"):].strip()
    else:
        return None
    lowered = body.lower()
    if lowered.startswith("acc"):
        rest = body[3:].strip()
        if rest.lower().startswith("parallel loop"):
            pragma = Pragma("parallel_loop", line, text)
            clause_text = rest[len("parallel loop"):]
        elif rest.lower().startswith("kernels loop"):
            pragma = Pragma("parallel_loop", line, text)
            clause_text = rest[len("kernels loop"):]
        elif rest.lower().startswith("kernels"):
            pragma = Pragma("parallel_loop", line, text)
            clause_text = rest[len("kernels"):]
        elif rest.lower().startswith("data"):
            pragma = Pragma("data", line, text)
            clause_text = rest[len("data"):]
        elif rest.lower().startswith("loop"):
            pragma = Pragma("parallel_loop", line, text)
            clause_text = rest[len("loop"):]
        else:
            raise AccError(f"unsupported acc directive: {text!r}")
    elif lowered.startswith("omp"):
        rest = body[3:].strip()
        if not rest.lower().startswith("parallel for"):
            return None
        pragma = Pragma("parallel_loop", line, text)
        clause_text = rest[len("parallel for"):]
    else:
        return None

    for match in _CLAUSE_RE.finditer(clause_text):
        name = match.group(1).lower()
        arg = (match.group(3) or "").strip()
        if name == "copy":
            pragma.copy.extend(_names(arg))
        elif name == "copyin":
            pragma.copyin.extend(_names(arg))
        elif name == "copyout":
            pragma.copyout.extend(_names(arg))
        elif name == "reduction":
            if ":" not in arg:
                raise AccError(f"bad reduction clause: {arg!r}")
            op, var = arg.split(":", 1)
            op = op.strip().lower()
            if op not in ("min", "max", "+"):
                raise AccError(f"unsupported reduction operator {op!r}")
            pragma.reduction.append((op, var.strip()))
        elif name == "collapse":
            pragma.collapse = int(arg)
        elif name == "gang":
            pragma.gang = True
        elif name == "worker":
            pragma.worker = True
        elif name == "vector":
            pragma.vector = True
        elif name == "num_gangs":
            pragma.num_gangs = int(arg)
        elif name in ("present", "private", "independent", "seq"):
            pass  # accepted and ignored
        elif name:
            raise AccError(f"unsupported clause {name!r} in {text!r}")
    return pragma
