"""Movable (`mov`) values: ownership transfer instead of deep copy.

In an actor language, data sent along a channel must normally be
duplicated to preserve shared-nothing semantics.  Ensemble's ``mov``
qualifier (paper Section 4) instead transfers a *reference*, and the
compiler proves the sender never touches the value again until it is
reassigned.  The reproduction enforces the same property two ways:

* statically, in the Ensemble type checker's movability analysis; and
* dynamically, here: a :class:`Movable` wrapper raises
  :class:`~repro.errors.MovedValueError` on any access after its
  ownership was surrendered to a channel.

Movability is also what makes the paper's key OpenCL optimisation
possible — leaving data on the device between kernels — because only a
reference (which may point at device-resident data) travels.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, TypeVar

from ..errors import MovedValueError

_move_counter = itertools.count(1)

T = TypeVar("T")


class Movable:
    """A single-owner box around a payload.

    ``value`` reads the payload (raising after a move); ``surrender()``
    is called by the channel machinery on send and invalidates this box;
    the receiving side re-wraps the payload in a fresh box.
    """

    __slots__ = ("_payload", "_moved", "move_id")

    def __init__(self, payload: Any) -> None:
        self._payload = payload
        self._moved = False
        self.move_id = next(_move_counter)

    @property
    def moved(self) -> bool:
        return self._moved

    @property
    def value(self) -> Any:
        if self._moved:
            raise MovedValueError(
                "movable value accessed after being sent on a channel"
            )
        return self._payload

    def surrender(self) -> Any:
        """Give up ownership; returns the payload for re-wrapping."""
        if self._moved:
            raise MovedValueError("movable value sent twice")
        payload = self._payload
        self._moved = True
        self._payload = None
        return payload

    def reassign(self, payload: Any) -> None:
        """Assigning to a moved variable makes it usable again (paper:
        'not accessed again until it is assigned to')."""
        self._payload = payload
        self._moved = False

    def __repr__(self) -> str:
        if self._moved:
            return f"<Movable #{self.move_id} (moved)>"
        return f"<Movable #{self.move_id} {type(self._payload).__name__}>"


def mov(payload: Any) -> Movable:
    """Mark *payload* as movable (the ``mov`` qualifier)."""
    if isinstance(payload, Movable):
        return payload
    return Movable(payload)


def is_movable(value: Any) -> bool:
    return isinstance(value, Movable)


def copy_message(value: Any) -> Any:
    """Duplicate a non-movable message to preserve shared-nothing
    semantics.  Movables are not handled here — channels route them
    through :meth:`Movable.surrender` instead."""
    from .residency import ManagedArray

    if getattr(value, "__by_reference__", False):
        # Channel ends (and structs carrying them) are runtime entities,
        # not data: they travel by reference so receivers can use them.
        return value
    if isinstance(value, ManagedArray):
        return value.clone()
    if hasattr(value, "clone") and callable(value.clone):
        return value.clone()
    if isinstance(value, (int, float, bool, str, bytes, type(None))):
        return value
    if isinstance(value, dict):
        return {k: copy_message(v) for k, v in value.items()}
    if isinstance(value, tuple):
        return tuple(copy_message(v) for v in value)
    if isinstance(value, list):
        return [copy_message(v) for v in value]
    return copy.deepcopy(value)
