"""The Ensemble virtual machine.

Executes :class:`~repro.ensemble.bytecode.CompiledProgram` objects: one
thread per actor interpreting that actor's behaviour bytecode in a loop
(paper Section 5), channels mapped onto the runtime's typed ports, and
``invokenative``-style operations for printing, math, and the OpenCL
wrappers (Section 6.2.2).

Every executed bytecode charges ``BYTECODE_NS`` of simulated host time —
this is the paper's interpreter overhead, visible as the larger
"overhead" segment of the Ensemble bars in Figure 3.
"""

from __future__ import annotations

import math
import random
import threading
from typing import Any, Optional

from ..errors import ChannelClosed, CLDeviceLost, RuntimeFault, VMError
from ..ensemble.bytecode import (
    Code,
    CompiledActor,
    CompiledProgram,
    KernelPlan,
)
from ..kir.interp import c_idiv, c_imod
from ..opencl import CostLedger
from ..opencl import faults
from ..opencl.context import current_clock
from ..opencl.program import Program
from ..trace import current_tracer
from ..actors.actor import Actor, Stage, StopBehaviour
from ..actors.channel import InPort, OutPort, connect
from .oclenv import device_matrix, get_environment
from .mov import Movable, is_movable, mov
from .residency import ManagedArray
from .values import StructValue, index_value, length_of, store_value

#: Simulated cost of interpreting one bytecode.  Calibrated (see
#: EXPERIMENTS.md) so the VM-interpretation overhead fraction at the
#: benchmark sizes matches the proportions the paper reports at full
#: size; the paper's modified-JVM interpreter ran simple quickened
#: bytecodes considerably faster than a naive switch interpreter.
BYTECODE_NS = 4.0

_MATH_NATIVES = {
    "sqrt": math.sqrt,
    "fabs": abs,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "pow": math.pow,
    "floor": lambda x: float(math.floor(x)),
    "ceil": lambda x: float(math.ceil(x)),
    "fmin": min,
    "fmax": max,
    "atan2": math.atan2,
}


def _close_reachable_ports(values: list) -> None:
    """Close every channel end reachable from *values*.

    Used when a VM actor exits abnormally: the ports wired into the
    messages it was holding (struct fields, movable payloads, lists)
    would otherwise keep blocked peers waiting forever.  Closing is
    idempotent, so sweeping an already-finalized port is harmless.
    """
    seen: set[int] = set()
    stack = list(values)
    while stack:
        value = stack.pop()
        if value is None or id(value) in seen:
            continue
        seen.add(id(value))
        if isinstance(value, (InPort, OutPort)):
            value.close()
        elif isinstance(value, StructValue):
            stack.extend(value.fields.values())
        elif is_movable(value):
            stack.append(value.value)
        elif isinstance(value, (list, tuple)):
            stack.extend(value)


class VMActor(Actor):
    """An actor whose behaviour interprets Ensemble bytecode."""

    def __init__(self, vm: "EnsembleVM", compiled: CompiledActor, args: list):
        super().__init__()
        self.vm = vm
        self.compiled = compiled
        self.name = f"{compiled.name}-{self.actor_id}"
        self.state: dict[str, Any] = {}
        self.channels: dict[str, Any] = {}
        for cname, direction, _movable, buffer in compiled.channel_specs:
            if direction == "in":
                port: Any = InPort(buffer=buffer,
                                   name=f"{self.name}.{cname}",
                                   owner=self)
            else:
                port = OutPort(name=f"{self.name}.{cname}", owner=self)
            # Run-stable fault coordinate: the port's display name embeds
            # the global actor id, which is not stable across runs, so
            # fault plans key hand-offs on `<ActorType>.<channel>`.
            port.stable_key = f"{compiled.name}.{cname}"
            self.channels[cname] = port
        self._program_cache: Optional[Program] = None
        self._env_override = None
        self._chan_seq = 0
        vm.execute(self.compiled.state_init, [], actor=self)
        ctor = self.compiled.constructor
        frame = [None] * max(ctor.nlocals, len(args))
        for slot, value in zip(ctor.param_slots, args):
            frame[slot] = value
        vm.execute(ctor, frame, actor=self)

    def behaviour(self) -> None:
        code = self.compiled.behaviour
        if not code.instrs:
            raise StopBehaviour()
        frame = [None] * code.nlocals
        try:
            self.vm.execute(code, frame, actor=self)
        except StopBehaviour:
            raise
        except BaseException:
            # An abnormal exit (crash, or a mid-pipeline ChannelClosed)
            # must not leave peers blocked on channels whose ends this
            # actor received inside messages — the req structs of the
            # paper's pipelines.  :meth:`_close_ports` only covers the
            # presented interface, so close every port reachable from
            # the live frame and actor state too; downstream receivers
            # observe the closure and the shutdown cascades, exactly as
            # KernelActor closes ``request.output`` on a failed
            # dispatch.
            _close_reachable_ports(frame)
            _close_reachable_ports(list(self.state.values()))
            raise

    def _close_ports(self) -> None:
        super()._close_ports()
        for port in self.channels.values():
            port.close()

    def port(self, name: str):
        try:
            return self.channels[name]
        except KeyError:
            raise VMError(
                f"{self.compiled.name} has no channel {name!r}"
            ) from None


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class EnsembleVM:
    """Executes one compiled program on a stage."""

    def __init__(self, program: CompiledProgram, echo: bool = False) -> None:
        self.program = program
        self.stage = Stage(program.stage_name)
        self.ledger = CostLedger()
        self.clock = current_clock()
        self.echo = echo
        self.output: list[str] = []
        self.rng = random.Random(0xEA5EB1E)
        self._out_lock = threading.Lock()
        self._booted = False
        self._boot_chan_seq = 0

    # -- lifecycle -----------------------------------------------------------

    def boot(self) -> None:
        """Run the boot block (creates and wires the actors)."""
        if self._booted:
            raise VMError("program already booted")
        self._booted = True
        code = self.program.boot
        self.execute(code, [None] * code.nlocals, actor=None)

    def run(self, timeout: float = 120.0) -> None:
        """boot + start every actor thread + wait for completion."""
        if not self._booted:
            self.boot()
        self.stage.run(timeout)

    # -- cost accounting ---------------------------------------------------

    def charge(
        self, instructions: int, actor: Optional[VMActor] = None
    ) -> None:
        ns = instructions * BYTECODE_NS
        now = self.clock.advance(ns)
        self.ledger.charge("host", ns)
        self.clock.timeline.serial_advance("api", ns)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.cost_span(
                "host",
                ns,
                name="vm.bytecode",
                track=self._track(actor),
                ts_ns=now - ns,
                args={"instructions": instructions},
            )

    def _track(self, actor: Optional[VMActor]) -> str:
        return f"vm/{actor.name if actor is not None else self.stage.name}"

    # -- fault injection (the VM-side gates) -------------------------------

    def _charge_fault(
        self,
        ns: float,
        name: str,
        actor: Optional[VMActor],
        args: Optional[dict],
    ) -> None:
        """Price one aborted attempt / backoff exactly like VM work:
        simulated host time on the VM ledger, serial on the composed
        timeline, a cost span on the actor's track."""
        now = self.clock.advance(ns)
        self.ledger.charge("host", ns)
        self.clock.timeline.serial_advance("api", ns)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.cost_span(
                "host",
                ns,
                name=name,
                track=self._track(actor),
                ts_ns=now - ns,
                args=args,
            )

    def _fault_gate(
        self,
        op: str,
        key: str,
        attempt_ns: float,
        span_name: str,
        actor: Optional[VMActor],
        device=None,
    ) -> None:
        """Consult the fault plan before a VM-side operation, charging
        attempts and backoff through :meth:`_charge_fault` with the
        substrate's retry/raise semantics (:func:`faults.host_gate`)."""
        faults.host_gate(
            op,
            key,
            attempt_ns,
            lambda ns, name, args: self._charge_fault(ns, name, actor, args),
            span_name=span_name,
            device=device,
        )

    @staticmethod
    def _handoff_key(chan: OutPort) -> Optional[str]:
        """The run-stable fault coordinate of a hand-off, or ``None``
        when neither end of the channel is addressable."""
        key = getattr(chan, "stable_key", None)
        if key is not None:
            return key
        for target in getattr(chan, "_targets", ()):
            tkey = getattr(target, "stable_key", None)
            if tkey is not None:
                return tkey
        return None

    # -- the interpreter -----------------------------------------------------

    def execute(
        self, code: Code, frame: list, actor: Optional[VMActor]
    ) -> Any:
        try:
            return self._execute(code, frame, actor)
        except _Return as ret:
            return ret.value

    def _execute(
        self, code: Code, frame: list, actor: Optional[VMActor]
    ) -> Any:
        instrs = code.instrs
        stack: list = []
        pc = 0
        executed = 0
        n = len(instrs)
        try:
            while pc < n:
                op, arg = instrs[pc]
                pc += 1
                executed += 1
                if op == "CONST":
                    stack.append(arg)
                elif op == "LOADL":
                    stack.append(frame[arg])
                elif op == "STOREL":
                    frame[arg] = stack.pop()
                elif op == "LOADSTATE":
                    assert actor is not None
                    stack.append(actor.state[arg])
                elif op == "STORESTATE":
                    assert actor is not None
                    actor.state[arg] = stack.pop()
                elif op == "LOADCHAN":
                    assert actor is not None
                    stack.append(actor.port(arg))
                elif op == "GETFIELD":
                    obj = stack.pop()
                    stack.append(self._get_field(obj, arg))
                elif op == "SETFIELD":
                    obj = stack.pop()
                    value = stack.pop()
                    if not isinstance(obj, StructValue):
                        raise VMError(
                            f"field assignment into {type(obj).__name__}"
                        )
                    obj.set(arg, value)
                elif op == "GETINDEX":
                    idx = stack.pop()
                    obj = stack.pop()
                    stack.append(index_value(obj, idx))
                elif op == "SETINDEX":
                    idx = stack.pop()
                    obj = stack.pop()
                    value = stack.pop()
                    store_value(obj, idx, value)
                elif op == "BINOP":
                    right = stack.pop()
                    left = stack.pop()
                    stack.append(_binop(arg, left, right))
                elif op == "UNOP":
                    value = stack.pop()
                    stack.append(-value if arg == "-" else (not value))
                elif op == "JUMP":
                    pc = arg
                elif op == "JUMPF":
                    if not stack.pop():
                        pc = arg
                elif op == "NEWARRAY":
                    ndims, dtype = arg
                    fill = stack.pop()
                    dims = [stack.pop() for _ in range(ndims)]
                    dims.reverse()
                    size = 1
                    for d in dims:
                        size *= d
                    stack.append(
                        ManagedArray([fill] * size, tuple(dims), dtype)
                    )
                elif op == "NEWSTRUCT":
                    name, argc = arg
                    values = [stack.pop() for _ in range(argc)]
                    values.reverse()
                    stack.append(self._new_struct(name, values))
                elif op == "NEWCHAN":
                    direction, _movable = arg
                    port = InPort() if direction == "in" else OutPort()
                    # Bytecode order is program-determined, so a per-actor
                    # channel sequence number is a run-stable fault
                    # coordinate for anonymous (behaviour-local) ports.
                    if actor is not None:
                        seq = actor._chan_seq
                        actor._chan_seq = seq + 1
                        port.stable_key = (
                            f"{actor.compiled.name}.chan{seq}"
                        )
                    else:
                        seq = self._boot_chan_seq
                        self._boot_chan_seq = seq + 1
                        port.stable_key = f"{self.stage.name}.chan{seq}"
                    stack.append(port)
                elif op == "NEWACTOR":
                    name, argc = arg
                    values = [stack.pop() for _ in range(argc)]
                    values.reverse()
                    stack.append(self._new_actor(name, values))
                elif op == "SEND":
                    chan = stack.pop()
                    value = stack.pop()
                    if not isinstance(chan, OutPort):
                        raise VMError("send on a non-out channel value")
                    if faults.active_plan() is not None:
                        key = self._handoff_key(chan)
                        if key is not None:
                            self._fault_gate(
                                "handoff", key, BYTECODE_NS,
                                "fault.ensemble.handoff", actor,
                            )
                    chan.send(mov(value) if arg else value)
                elif op == "RECEIVE":
                    chan = stack.pop()
                    if not isinstance(chan, InPort):
                        raise VMError("receive on a non-in channel value")
                    item = chan.receive()
                    stack.append(item.value if is_movable(item) else item)
                elif op == "CONNECT":
                    target = stack.pop()
                    source = stack.pop()
                    connect(source, target)
                elif op == "CALL":
                    name, argc = arg
                    values = [stack.pop() for _ in range(argc)]
                    values.reverse()
                    stack.append(self._call_function(name, values, actor))
                elif op == "NATIVE":
                    name, argc = arg
                    values = [stack.pop() for _ in range(argc)]
                    values.reverse()
                    stack.append(self._native(name, values, actor))
                elif op == "DISPATCH":
                    assert actor is not None
                    plan = actor.compiled.kernel_plan
                    assert plan is not None
                    try:
                        self._dispatch_kernel(actor, plan, frame)
                    except Exception:
                        # A failed dispatch must not leave the receiver
                        # of the reply channel blocked forever.
                        request = frame[plan.req_slot]
                        if isinstance(request, StructValue):
                            out_port = request.fields.get(plan.out_field)
                            if isinstance(out_port, OutPort):
                                out_port.close()
                        raise
                elif op == "POP":
                    stack.pop()
                elif op == "STOP":
                    raise StopBehaviour()
                elif op == "RET":
                    raise _Return(stack.pop())
                else:
                    raise VMError(f"unknown opcode {op!r}")
        finally:
            self.charge(executed, actor)
        return None

    # -- operations ----------------------------------------------------------

    @staticmethod
    def _get_field(obj: Any, name: str) -> Any:
        if isinstance(obj, StructValue):
            return obj.get(name)
        if isinstance(obj, VMActor):
            return obj.port(name)
        raise VMError(f"field access on {type(obj).__name__}")

    def _new_struct(self, name: str, values: list) -> StructValue:
        fields: dict[str, Any] = {}
        # field order comes from the compiled program's source table via
        # struct construction order — positional, as in `new settings_t(..)`
        names = self._struct_field_names(name)
        if len(values) != len(names):
            raise VMError(
                f"struct {name} expects {len(names)} fields, "
                f"got {len(values)}"
            )
        for fname, value in zip(names, values):
            fields[fname] = value
        return StructValue(name, fields)

    def _struct_field_names(self, name: str) -> list[str]:
        names = self.program.struct_fields.get(name)
        if names is None:
            raise VMError(f"unknown struct {name!r}")
        return names

    def _new_actor(self, name: str, args: list) -> VMActor:
        compiled = self.program.actors.get(name)
        if compiled is None:
            raise VMError(f"unknown actor {name!r}")
        actor = VMActor(self, compiled, args)
        self.stage.spawn(actor)
        return actor

    def _call_function(
        self, name: str, args: list, actor: Optional[VMActor]
    ) -> Any:
        fn = self.program.functions.get(name)
        if fn is None:
            raise VMError(f"unknown function {name!r}")
        frame = [None] * fn.code.nlocals
        for slot, value in zip(fn.code.param_slots, args):
            frame[slot] = value
        return self.execute(fn.code, frame, actor)

    def _native(
        self, name: str, args: list, actor: Optional[VMActor] = None
    ) -> Any:
        if faults.active_plan() is not None:
            # `invokenative` host calls are a fault site: one aborted
            # interpreter issue (BYTECODE_NS) per failed attempt.
            self._fault_gate(
                "native", name, BYTECODE_NS, "fault.vm.native", actor
            )
        if name == "printString":
            return self._print(args[0])
        if name == "printInt":
            return self._print(str(int(args[0])))
        if name == "printReal":
            return self._print(repr(float(args[0])))
        if name == "printBool":
            return self._print("true" if args[0] else "false")
        if name == "intToReal":
            return float(args[0])
        if name == "realToInt":
            return int(args[0])
        if name == "length":
            return length_of(args[0])
        if name == "fillPattern1D":
            arr, mul, inc, mod, off, divisor = args
            flat = arr.host()
            is_real = arr.dtype == "float"
            for i in range(len(flat)):
                value = (i * mul + inc) % mod + off
                flat[i] = float(value) / divisor if is_real else value
            self._charge_fill(len(flat))
            return None
        if name == "fillPattern2D":
            arr, rm, cm, inc, mod, off, divisor = args
            rows, cols = arr.shape
            flat = arr.host()
            is_real = arr.dtype == "float"
            for i in range(rows):
                base = i * cols
                for j in range(cols):
                    value = (i * rm + j * cm + inc) % mod + off
                    flat[base + j] = (
                        float(value) / divisor if is_real else value
                    )
            self._charge_fill(len(flat))
            return None
        if name == "fillPatternCond2D":
            arr, rm, cm, mod, rm2, cm2, mod2, off2 = args
            rows, cols = arr.shape
            flat = arr.host()
            for i in range(rows):
                base = i * cols
                for j in range(cols):
                    if (i * rm + j * cm) % mod == 0:
                        flat[base + j] = (i * rm2 + j * cm2) % mod2 + off2
                    else:
                        flat[base + j] = 0
            self._charge_fill(len(flat))
            return None
        if name == "minElement":
            array = args[0]
            if not isinstance(array, ManagedArray):
                raise VMError("minElement expects an array")
            flat = array.host()
            self._charge_fill(len(flat))
            return min(flat)
        if name == "checksumWeighted":
            # Verification apparatus (not part of the paper's apps): a
            # runtime native, priced at sequential host speed.
            array = args[0]
            if not isinstance(array, ManagedArray):
                raise VMError("checksumWeighted expects an array")
            flat = array.host()
            total = 0.0
            for i, value in enumerate(flat):
                total += (i % 97 + 1) * value
            self._charge_fill(len(flat))
            if array.dtype == "int":
                return int(total)
            return total
        if name == "random":
            return self.rng.random()
        if name == "randomInt":
            return self.rng.randrange(max(1, args[0]))
        if name == "clockMillis":
            return int(self.clock.now_ns // 1_000_000)
        fn = _MATH_NATIVES.get(name)
        if fn is None:
            raise VMError(f"unknown native {name!r}")
        return fn(*args)

    def _charge_fill(self, elements: int) -> None:
        """Bulk data natives run at optimised-C host speed (the same
        rate the interpreted single-threaded/OpenACC hosts are priced
        at: ~6 simple ops per element at 10 ops/ns)."""
        ns = 0.6 * elements
        now = self.clock.advance(ns)
        self.ledger.charge("host", ns)
        self.clock.timeline.serial_advance("api", ns)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.cost_span(
                "host",
                ns,
                name="vm.native_fill",
                track=f"vm/{self.stage.name}",
                ts_ns=now - ns,
                args={"elements": elements},
            )

    def _print(self, text: str) -> None:
        with self._out_lock:
            self.output.append(text)
        if self.echo:
            print(text, end="")

    # -- OpenCL dispatch (the invokenative wrappers) ---------------------

    def _dispatch_kernel(
        self, actor: VMActor, plan: KernelPlan, frame: list
    ) -> None:
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(
                f"vm.dispatch:{plan.kernel_name}",
                track=self._track(actor),
                category="vm",
                kernel=plan.kernel_name,
                device_type=plan.device_type,
            ):
                self._dispatch_with_failover(actor, plan, frame)
        else:
            self._dispatch_with_failover(actor, plan, frame)

    def _dispatch_with_failover(
        self, actor: VMActor, plan: KernelPlan, frame: list
    ) -> None:
        try:
            self._dispatch_kernel_inner(actor, plan, frame)
        except CLDeviceLost:
            # The VM-driven kernel actor's device dropped off the bus
            # (injected on the `vm` site or any substrate gate inside
            # the dispatch): re-target a survivor and re-issue, exactly
            # as the runtime KernelActor does.  Managed arrays carry
            # their own residency, so inputs re-upload from the host
            # copy on the new context.
            self._vm_failover(actor, plan)
            self._dispatch_kernel_inner(actor, plan, frame)

    def _vm_failover(self, actor: VMActor, plan: KernelPlan) -> None:
        env = actor._env_override
        if env is None:
            env = get_environment(
                plan.device_type, plan.device_index, plan.platform_index
            )
        actor._env_override = device_matrix().failover_environment(
            env.device
        )
        actor._program_cache = None
        faults.count_failover()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("actor.failover")

    def _dispatch_kernel_inner(
        self, actor: VMActor, plan: KernelPlan, frame: list
    ) -> None:
        request = frame[plan.req_slot]
        data = frame[plan.data_slot]
        if not isinstance(request, StructValue):
            raise VMError("kernel request is not a struct")
        env = actor._env_override
        if env is None:
            env = get_environment(
                plan.device_type, plan.device_index, plan.platform_index
            )
        if faults.active_plan() is not None:
            # The VM dispatch wrapper itself is a fault site: one
            # aborted wrapper call (api_call_ns) per failed attempt.
            self._fault_gate(
                "vm",
                plan.kernel_name,
                env.device.spec.api_call_ns,
                "fault.vm.dispatch",
                actor,
                device=env.device,
            )
        if actor._program_cache is None:
            # Each actor acquires once; actors sharing identical kernel
            # source get the context's program, paying the full compile
            # only on the first acquisition (binary-load charge after).
            actor._program_cache = Program.shared(
                env.context, plan.kernel_source, env.device
            )
        program = actor._program_cache
        kernel = program.create_kernel(plan.kernel_name)
        queue = env.queue
        spec_ns = env.device.spec.api_call_ns

        arrays: dict[str, ManagedArray] = {}
        scalar_carriers: list[tuple[str, ManagedArray]] = []
        for index, pspec in enumerate(plan.params):
            if pspec.kind in ("array_field", "array_self"):
                value = (
                    data.get(pspec.fname)
                    if pspec.kind == "array_field"
                    else data
                )
                if not isinstance(value, ManagedArray):
                    raise VMError(
                        f"kernel argument {pspec.fname!r} is not an array"
                    )
                arrays[pspec.name] = value
                copy_in = pspec.name in plan.read_params
                kernel.set_arg(index, value.to_device(queue, copy=copy_in))
            elif pspec.kind in ("dim_field", "dim_self"):
                source = (
                    data.get(pspec.fname)
                    if pspec.kind == "dim_field"
                    else data
                )
                kernel.set_arg(index, source.shape[pspec.axis])
            elif pspec.kind == "scalar_field":
                value = data.get(pspec.fname)
                carrier = ManagedArray([value], (1,), pspec.dtype)
                scalar_carriers.append((pspec.name, pspec.fname, carrier))
                kernel.set_arg(index, carrier.to_device(queue))
            else:  # pragma: no cover - plan construction guards this
                raise VMError(f"bad param spec kind {pspec.kind!r}")

        worksize = self._int_list(request.get(plan.worksize_field))
        groupsize = self._int_list(request.get(plan.groupsize_field))
        if not groupsize or all(g == 0 for g in groupsize):
            groupsize = None
        # Host-side wrapper overhead for the automated setup calls.
        env.context.charge(
            "host",
            spec_ns * (1 + len(plan.params)),
            name="vm.dispatch_setup",
            args={"kernel": plan.kernel_name, "params": len(plan.params)},
        )
        queue.enqueue_nd_range_kernel(kernel, worksize, groupsize)

        for pname in plan.written_params:
            array = arrays.get(pname)
            if array is not None:
                array.mark_device_written()
        # Primitives are always read back (they are 1-element arrays).
        for pname, fname, carrier in scalar_carriers:
            if pname in plan.written_params:
                carrier.mark_device_written()
            data.set(fname, carrier[0])
        if not plan.in_movable:
            # Without mov the compiler generates the read-back code.
            for array in arrays.values():
                array.sync_host()

    @staticmethod
    def _int_list(value: Any) -> list[int]:
        if isinstance(value, ManagedArray):
            return [int(v) for v in value.host()]
        raise VMError("worksize/groupsize must be integer arrays")


def _binop(op: str, left: Any, right: Any) -> Any:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            return c_idiv(left, right)
        return left / right
    if op == "%":
        return c_imod(left, right)
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "and":
        return bool(left) and bool(right)
    if op == "or":
        return bool(left) or bool(right)
    raise VMError(f"unknown operator {op!r}")
