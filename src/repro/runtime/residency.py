"""Managed arrays with lazy device residency (paper Section 6.2.3).

A :class:`ManagedArray` is the runtime representation of an Ensemble
array: a flat host store plus an optional device-resident buffer.  The
coherence protocol reproduces the paper's lazy evaluation:

* sending a *movable* array into a kernel actor moves only a reference;
  if the data is already resident on the target device's context, no
  transfer happens at all;
* after a kernel writes a buffer, the device copy becomes authoritative
  (``host_valid = False``) and **no read-back is generated** — exactly
  the effect of marking the kernel's in channel ``mov``;
* the data is only read back (and the device memory returned) when host
  code actually touches it, or when it arrives at an OpenCL actor bound
  to a *different* context.

Multi-dimensional arrays are stored flat in row-major order with the
shape kept alongside — the same flattening the Ensemble compiler applies
when passing arrays to kernels (Section 6.1.2).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Optional, Sequence

from ..errors import RuntimeFault
from ..opencl import fusion
from ..opencl.memory import Buffer
from ..opencl.queue import CommandQueue
from ..trace import current_tracer

_array_ids = itertools.count(1)

_ZERO = {"float": 0.0, "int": 0, "bool": False}


class ManagedArray:
    """A host array that may transparently live on an OpenCL device."""

    def __init__(
        self,
        flat: list,
        shape: Sequence[int],
        dtype: str = "float",
    ) -> None:
        expected = 1
        for dim in shape:
            expected *= dim
        if len(flat) != expected:
            raise RuntimeFault(
                f"flat length {len(flat)} does not match shape {tuple(shape)}"
            )
        self.id = next(_array_ids)
        self._flat = flat
        self.shape = tuple(shape)
        self.dtype = dtype
        self._buffer: Optional[Buffer] = None
        self._queue: Optional[CommandQueue] = None
        self._host_valid = True
        self._device_valid = False

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(cls, shape: Sequence[int] | int, dtype: str = "float") -> "ManagedArray":
        if isinstance(shape, int):
            shape = (shape,)
        n = 1
        for dim in shape:
            n *= dim
        return cls([_ZERO[dtype]] * n, shape, dtype)

    @classmethod
    def from_flat(
        cls, values: Iterable, shape: Sequence[int] | int, dtype: str = "float"
    ) -> "ManagedArray":
        if isinstance(shape, int):
            shape = (shape,)
        return cls(list(values), shape, dtype)

    @classmethod
    def from_nested(cls, nested: Sequence, dtype: str = "float") -> "ManagedArray":
        """Build from a (possibly nested) Python list, row-major."""
        shape: list[int] = []
        probe = nested
        while isinstance(probe, (list, tuple)):
            shape.append(len(probe))
            probe = probe[0] if probe else None
        flat: list = []

        def _flatten(node, depth):
            if depth == len(shape):
                flat.append(node)
                return
            if len(node) != shape[depth]:
                raise RuntimeFault("ragged nested array")
            for child in node:
                _flatten(child, depth + 1)

        _flatten(nested, 0)
        return cls(flat, shape, dtype)

    # -- geometry ----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._flat) if self._host_valid else (
            self._buffer.n_elements if self._buffer else len(self._flat)
        )

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def _flat_index(self, key) -> int:
        if isinstance(key, int):
            if self.ndim != 1:
                raise RuntimeFault(
                    f"scalar index into {self.ndim}-D array; use a tuple"
                )
            if not 0 <= key < self.shape[0]:
                raise RuntimeFault(
                    f"index {key} out of range for length {self.shape[0]}"
                )
            return key
        if len(key) != self.ndim:
            raise RuntimeFault(f"index {key} rank != array rank {self.ndim}")
        idx = 0
        for dim, k in zip(self.shape, key):
            if not 0 <= k < dim:
                raise RuntimeFault(f"index {key} out of bounds for {self.shape}")
            idx = idx * dim + k
        return idx

    # -- residency protocol -------------------------------------------------

    @property
    def on_device(self) -> bool:
        return self._device_valid

    @property
    def host_valid(self) -> bool:
        return self._host_valid

    def to_device(self, queue: CommandQueue, copy: bool = True) -> Buffer:
        """Ensure the data is resident on *queue*'s context; return the
        buffer.  Already-resident data in the same context moves nothing
        (the lazy-evaluation win).  ``copy=False`` allocates without the
        host->device transfer — used for buffers the kernel only writes,
        matching what hand-written OpenCL host code does."""
        tracer = current_tracer()
        if self._device_valid and self._buffer is not None:
            if self._buffer.context is queue.context:
                if tracer.enabled:
                    tracer.count("residency.hit")
                self._queue = queue
                return self._buffer
            # Different context: pull back through the old link first
            # (OpenCL moves data within one context, not across contexts —
            # paper Section 6.2.3).
            if tracer.enabled:
                tracer.count("residency.cross_context")
            self._sync_host_from_device()
            self._release_buffer()
        if not self._host_valid:
            raise RuntimeFault("array has neither a valid host nor device copy")
        if self._buffer is not None:
            # A device copy kept warm across an earlier host read (the
            # graph-level optimiser's round-trip collapse).  Reusable
            # only in the same context at the right size; the re-upload
            # below is elided by the queue layer when the contents are
            # still the ones the read-back certified.
            if (
                not self._buffer.released
                and self._buffer.context is queue.context
                and self._buffer.n_elements == len(self._flat)
            ):
                if tracer.enabled:
                    tracer.count("residency.warm")
                if copy:
                    queue.enqueue_write_buffer(self._buffer, self._flat)
                else:
                    self._buffer.data[:] = self._flat
                    self._buffer._h2d_clean = None
                self._queue = queue
                self._device_valid = True
                return self._buffer
            self._release_buffer()
        buf = Buffer(queue.context, len(self._flat), self.dtype)
        if copy:
            if tracer.enabled:
                tracer.count("residency.miss")
            queue.enqueue_write_buffer(buf, self._flat)
        else:
            if tracer.enabled:
                tracer.count("residency.alloc")
            buf.data[:] = self._flat  # contents land with the kernel write
        self._buffer = buf
        self._queue = queue
        self._device_valid = True
        return buf

    def mark_device_written(self) -> None:
        """A kernel stored into the buffer: the device copy is now the
        only truth, and no read-back is scheduled (lazy)."""
        if not self._device_valid:
            raise RuntimeFault("mark_device_written without a device copy")
        self._host_valid = False

    def sync_host(self, release_device: bool = True) -> None:
        """Materialise the host copy (reading back if required).

        Host access returns the device memory per the paper's protocol,
        so ``release_device`` defaults to True.  With the graph-level
        optimiser enabled the device copy is kept *warm* instead of
        freed (host stays authoritative): if the array travels back to
        the same context unmodified, the read-back -> re-upload round
        trip collapses — the queue layer elides the redundant h2d
        transfer against the copy the read-back certified.  A copy on a
        lost device is never kept (its queue cannot accept the
        re-upload), so device-loss failover always re-prices the full
        transfer on the surviving device.
        """
        if not self._host_valid:
            self._sync_host_from_device()
        if release_device:
            if (
                fusion.enabled()
                and self._buffer is not None
                and not self._buffer.released
                and self._queue is not None
                and not self._queue.device.lost
            ):
                self._device_valid = False
            else:
                self._release_buffer()

    def _sync_host_from_device(self) -> None:
        if self._buffer is None or self._queue is None:
            if not self._host_valid:
                raise RuntimeFault("lost both host and device copies")
            return
        if not self._host_valid:
            if len(self._flat) != self._buffer.n_elements:
                self._flat = [_ZERO[self.dtype]] * self._buffer.n_elements
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("residency.readback")
            self._queue.enqueue_read_buffer(self._buffer, self._flat)
            self._host_valid = True

    def _release_buffer(self) -> None:
        if self._buffer is not None and not self._buffer.released:
            self._buffer.release()
        self._buffer = None
        self._device_valid = False

    def release_device(self) -> None:
        """Read back (if the device copy is the truth) and free it."""
        self.sync_host(release_device=True)

    # -- host access (triggers read-back) -------------------------------

    def host(self) -> list:
        """The flat host list (synchronising first)."""
        self.sync_host()
        return self._flat

    def __getitem__(self, key):
        self.sync_host()
        return self._flat[self._flat_index(key)]

    def __setitem__(self, key, value) -> None:
        self.sync_host()
        self._flat[self._flat_index(key)] = value

    def __len__(self) -> int:
        return self.shape[0]

    def __iter__(self):
        self.sync_host()
        if self.ndim == 1:
            return iter(self._flat)
        raise RuntimeFault("iterate multi-D arrays via explicit indices")

    def tolist(self):
        """The data as (nested) Python lists."""
        self.sync_host()
        if self.ndim == 1:
            return list(self._flat)

        def build(depth: int, base: int, stride: int):
            dim = self.shape[depth]
            inner = stride // dim
            if depth == self.ndim - 1:
                return self._flat[base : base + dim]
            return [
                build(depth + 1, base + i * inner, inner) for i in range(dim)
            ]

        total = len(self._flat)
        return build(0, 0, total)

    def clone(self) -> "ManagedArray":
        """Deep host-side copy (used for non-movable channel sends)."""
        self.sync_host(release_device=False)
        return ManagedArray(list(self._flat), self.shape, self.dtype)

    def __repr__(self) -> str:
        where = []
        if self._host_valid:
            where.append("host")
        if self._device_valid:
            where.append("device")
        return (
            f"<ManagedArray #{self.id} shape={self.shape} {self.dtype} "
            f"on={'+'.join(where) or 'nowhere'}>"
        )
