"""Runtime value representations for the Ensemble VM.

* Arrays are :class:`~repro.runtime.residency.ManagedArray` (flat store
  + shape + optional device residency).  Multi-dimensional indexing is
  performed through lightweight :class:`ArrayView` windows so that
  ``d.a[y][i]`` works without materialising row objects.
* Structs are :class:`StructValue` (ordered field dict).  Copying a
  struct for a channel send duplicates data fields but passes channel
  ends by reference.
"""

from __future__ import annotations

from typing import Any

from ..errors import RuntimeFault
from .mov import copy_message
from .residency import ManagedArray


class ArrayView:
    """A window into a ManagedArray fixed on a prefix of indices."""

    __slots__ = ("array", "prefix")

    def __init__(self, array: ManagedArray, prefix: tuple[int, ...]) -> None:
        self.array = array
        self.prefix = prefix

    @property
    def ndim(self) -> int:
        return self.array.ndim - len(self.prefix)

    def __len__(self) -> int:
        return self.array.shape[len(self.prefix)]

    def index(self, i: int):
        """One more index applied; returns a scalar or a deeper view."""
        full = self.prefix + (i,)
        if len(full) == self.array.ndim:
            return self.array[full]
        return ArrayView(self.array, full)

    def set(self, i: int, value: Any) -> None:
        full = self.prefix + (i,)
        if len(full) != self.array.ndim:
            raise RuntimeFault(
                f"assignment into a partial {self.ndim}-D array view"
            )
        self.array[full] = value

    def __repr__(self) -> str:
        return f"<ArrayView {self.array!r} prefix={self.prefix}>"


def index_value(obj: Any, i: int):
    """Runtime dispatch for GETINDEX."""
    if isinstance(obj, ManagedArray):
        if obj.ndim == 1:
            return obj[i]
        return ArrayView(obj, (i,))
    if isinstance(obj, ArrayView):
        return obj.index(i)
    raise RuntimeFault(f"cannot index into {type(obj).__name__}")


def store_value(obj: Any, i: int, value: Any) -> None:
    """Runtime dispatch for SETINDEX."""
    if isinstance(obj, ManagedArray):
        if obj.ndim != 1:
            raise RuntimeFault("assignment into a partial multi-D array")
        obj[i] = value
        return
    if isinstance(obj, ArrayView):
        obj.set(i, value)
        return
    raise RuntimeFault(f"cannot index-assign into {type(obj).__name__}")


def length_of(obj: Any) -> int:
    if isinstance(obj, (ManagedArray, ArrayView)):
        return len(obj)
    raise RuntimeFault(f"length() of {type(obj).__name__}")


class StructValue:
    """An Ensemble struct instance."""

    __slots__ = ("type_name", "fields")

    def __init__(self, type_name: str, fields: dict[str, Any]) -> None:
        self.type_name = type_name
        self.fields = fields

    def get(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise RuntimeFault(
                f"struct {self.type_name} has no field {name!r}"
            ) from None

    def set(self, name: str, value: Any) -> None:
        if name not in self.fields:
            raise RuntimeFault(
                f"struct {self.type_name} has no field {name!r}"
            )
        self.fields[name] = value

    def clone(self) -> "StructValue":
        return StructValue(
            self.type_name,
            {name: copy_message(value) for name, value in self.fields.items()},
        )

    def __repr__(self) -> str:
        return f"<{self.type_name} {list(self.fields)}>"
