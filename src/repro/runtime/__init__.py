"""The Ensemble runtime: VM, actors-on-threads, channels, movability,
device residency and the OpenCL device matrix."""

from .mov import Movable, copy_message, is_movable, mov  # noqa: F401
from .oclenv import (  # noqa: F401
    DeviceMatrix,
    OpenCLEnvironment,
    device_matrix,
    get_environment,
    reset_device_matrix,
)
from .residency import ManagedArray  # noqa: F401
from .values import ArrayView, StructValue  # noqa: F401
