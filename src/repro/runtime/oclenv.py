"""The runtime's platform/device matrix and per-actor OpenCL environments.

Paper Section 6.2.1: during runtime initialisation a single matrix is
created holding the platforms and devices available on the system, so
that there is exactly **one command queue per device** (the authors
observed read races with more).  An OpenCL actor's declaration
(``<device_index=0, device_type=CPU>``) indexes into this matrix; the
resulting :class:`OpenCLEnvironment` carries the device, context and
command queue the actor's dispatches use (Section 6.2.2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..errors import CLInvalidDevice, RuntimeFault
from ..opencl import (
    CommandQueue,
    Context,
    CostLedger,
    Device,
    Platform,
    get_platforms,
)

DEFAULT_DEVICE_TYPE = "GPU"

#: When set, newly created per-device runtime queues are out-of-order
#: (the hazard-tracking scheduler in :mod:`repro.opencl.queue`).  Ledger
#: totals and buffer contents are unaffected; only the queues' schedule
#: timelines (``makespan_ns`` / ``overlap_ns``) change.  Toggle it
#: *before* environments are created (or reset the matrix after).
_out_of_order = False


def set_out_of_order_queues(flag: bool) -> None:
    """Make queues created by the device matrix out-of-order."""
    global _out_of_order
    _out_of_order = bool(flag)


def out_of_order_queues() -> bool:
    """Whether the device matrix creates out-of-order queues."""
    return _out_of_order


@dataclass
class OpenCLEnvironment:
    """Runtime metadata attached to each OpenCL actor (Section 6.2.2)."""

    platform_index: int
    device_index: int
    device: Device
    context: Context
    queue: CommandQueue

    @property
    def device_type(self) -> str:
        return self.device.device_type


class DeviceMatrix:
    """Lazily-populated (platform x device) matrix of environments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._platforms: Optional[list[Platform]] = None
        self._envs: dict[tuple[int, int], OpenCLEnvironment] = {}

    def _ensure_platforms(self) -> list[Platform]:
        if self._platforms is None:
            self._platforms = get_platforms()
        return self._platforms

    def environment(
        self,
        device_type: Optional[str] = None,
        device_index: int = 0,
        platform_index: int = 0,
    ) -> OpenCLEnvironment:
        """The environment for the declared (type, index) — creating the
        context and the device's single queue on first use."""
        with self._lock:
            platforms = self._ensure_platforms()
            if not 0 <= platform_index < len(platforms):
                raise CLInvalidDevice(
                    f"platform index {platform_index} out of range"
                )
            platform = platforms[platform_index]
            wanted = device_type or DEFAULT_DEVICE_TYPE
            devices = [
                d for d in platform.devices if d.device_type == wanted
            ]
            if not devices:
                # Fall back to any device, as OpenCL runtimes commonly do
                # when the preferred type is absent.
                devices = platform.devices
            if not 0 <= device_index < len(devices):
                raise CLInvalidDevice(
                    f"device index {device_index} out of range for "
                    f"{wanted} devices on {platform.name!r}"
                )
            device = devices[device_index]
            return self._env_locked(
                platform_index, device_index, platform, device
            )

    def _env_locked(
        self,
        platform_index: int,
        device_index: int,
        platform: Platform,
        device: Device,
    ) -> OpenCLEnvironment:
        """Find or create *device*'s environment (``self._lock`` held)."""
        key = (platform_index, device.id)
        env = self._envs.get(key)
        if env is None:
            context = Context([device], platform)
            queue = CommandQueue(
                context, device, out_of_order=_out_of_order
            )
            env = OpenCLEnvironment(
                platform_index, device_index, device, context, queue
            )
            self._envs[key] = env
        return env

    def failover_environment(self, failed: Device) -> OpenCLEnvironment:
        """An environment on a surviving device after *failed* was lost.

        Kernel actors call this when a dispatch raises
        :class:`~repro.errors.CLDeviceLost`: the actor re-targets its
        program and buffers at the returned environment and re-issues
        the request (see docs/RELIABILITY.md).  Prefers a surviving
        device of the same type; otherwise takes any available device.
        Raises :class:`CLInvalidDevice` when nothing survived.
        """
        with self._lock:
            platforms = self._ensure_platforms()
            candidates: list[tuple[int, Platform, Device]] = []
            for p_index, platform in enumerate(platforms):
                for device in platform.devices:
                    if device is failed or device.lost:
                        continue
                    candidates.append((p_index, platform, device))
            candidates.sort(
                key=lambda c: c[2].device_type != failed.device_type
            )
            if not candidates:
                raise CLInvalidDevice(
                    f"no surviving device to fail over to from "
                    f"{failed.name!r}"
                )
            p_index, platform, device = candidates[0]
            peers = [
                d for d in platform.devices
                if d.device_type == device.device_type
            ]
            return self._env_locked(
                p_index, peers.index(device), platform, device
            )

    def acquire_queue(self, device: Device) -> CommandQueue:
        """The one queue for *device*; creating a second is refused."""
        with self._lock:
            for env in self._envs.values():
                if env.device is device:
                    return env.queue
        raise RuntimeFault(
            f"device {device.name!r} has no runtime environment yet"
        )

    def environments(self) -> list[OpenCLEnvironment]:
        with self._lock:
            return list(self._envs.values())

    def reset_ledgers(self) -> None:
        """Fresh ledgers on every environment (harness: between runs)."""
        with self._lock:
            for env in self._envs.values():
                env.context.reset_ledger()

    def combined_ledger(self) -> CostLedger:
        """Sum of all environments' ledgers (an app may span devices)."""
        total = CostLedger()
        with self._lock:
            for env in self._envs.values():
                led = env.context.ledger
                total.h2d_ns += led.h2d_ns
                total.d2h_ns += led.d2h_ns
                total.kernel_ns += led.kernel_ns
                total.host_ns += led.host_ns
                total.api_calls += led.api_calls
                total.kernel_launches += led.kernel_launches
                total.bytes_to_device += led.bytes_to_device
                total.bytes_from_device += led.bytes_from_device
        return total

    def reset(self) -> None:
        """Drop every environment (tests / platform swaps)."""
        with self._lock:
            for env in self._envs.values():
                env.queue.release()
                env.context.release()
            self._envs.clear()
            self._platforms = None


_matrix = DeviceMatrix()


def device_matrix() -> DeviceMatrix:
    """The process-wide matrix (initialised lazily)."""
    return _matrix


def get_environment(
    device_type: Optional[str] = None,
    device_index: int = 0,
    platform_index: int = 0,
) -> OpenCLEnvironment:
    """Convenience accessor used by kernel actors and VM natives."""
    return _matrix.environment(device_type, device_index, platform_index)


def reset_device_matrix() -> None:
    _matrix.reset()
