"""Content-addressed kernel compilation cache.

Real OpenCL runtimes (pocl's kernel-compiler cache, vendor binary
caches) avoid recompiling a kernel whose source, target device and
build options were seen before.  This module reproduces that host-side
behaviour for the simulator's own wall-clock: a compile is keyed by

    hash(kernel-C source x device-spec fingerprint x build options)

and the resulting :class:`~repro.kir.pycodegen.CompiledModule` is
shared process-wide.  An optional on-disk tier persists the lowered IR
(the simulator's analogue of a program *binary* — reloading it skips
the whole kernel-C front end) across processes.

Two layers of caching exist in the reproduction and they answer
different questions:

* **this module** dedupes the *Python-side* compilation work.  It never
  touches the simulated clock, so routing more paths through it cannot
  change a single reported nanosecond;
* the **per-context binary registry** (``Context.program_binary``) is
  what the *simulated* cost model consults: the first build of a source
  in a context charges ``compile_ns``, later builds of the same source
  charge only a binary-load API call — modelling
  ``clCreateProgramWithBinary`` (see DESIGN.md appendix).

Counters: every hit/miss/eviction increments module-level stats and,
when a tracer is active, the ``kcache.*`` trace counters, so
``Tracer.summary(with_counters=True)`` reports cache behaviour per run.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Any, Callable, Optional

from .trace import current_tracer

#: Bump when the IR or codegen changes shape: stale disk entries from
#: older layouts are ignored rather than unpickled into wrong objects.
DISK_FORMAT_VERSION = 1

#: Environment variable naming the on-disk tier directory (off when
#: unset).
DISK_ENV_VAR = "REPRO_KCACHE_DIR"

_DEFAULT_MAX_ENTRIES = 256


@dataclass
class KCacheStats:
    """Cumulative cache behaviour since the last :func:`reset_stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_stores: int = 0
    disk_evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "disk_evictions": self.disk_evictions,
        }


_lock = threading.Lock()
_entries: "OrderedDict[str, Any]" = OrderedDict()
_max_entries = _DEFAULT_MAX_ENTRIES
_disk_dir: Optional[str] = os.environ.get(DISK_ENV_VAR) or None
#: Size cap (bytes) for the disk tier; ``None`` leaves it unbounded.
_disk_max_bytes: Optional[int] = None
_stats = KCacheStats()


def spec_fingerprint(spec: Any) -> str:
    """A stable identity for a device spec, *excluding* its name.

    Two scaled platforms with identical numeric parameters produce the
    same compiled artefact, so bench platforms built per run still share
    cache entries; the display name never affects compilation.
    """
    if spec is None:
        return "host"
    parts = []
    for f in fields(spec):
        if f.name == "name":
            continue
        parts.append(f"{f.name}={getattr(spec, f.name)!r}")
    return ";".join(parts)


def fingerprint(source: str, spec: Any = None, options: str = "") -> str:
    """The content-addressed cache key for one compilation."""
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(b"\x00")
    h.update(spec_fingerprint(spec).encode())
    h.update(b"\x00")
    h.update(options.encode())
    return h.hexdigest()


def module_fingerprint(module: Any, spec: Any = None, options: str = "") -> str:
    """Cache key for an already-lowered IR module (OpenACC regions)."""
    h = hashlib.sha256()
    h.update(pickle.dumps(module))
    h.update(b"\x00")
    h.update(spec_fingerprint(spec).encode())
    h.update(b"\x00")
    h.update(options.encode())
    return h.hexdigest()


def configure(
    max_entries: Optional[int] = None,
    disk_dir: Optional[str] = None,
    disk_max_bytes: Optional[int] = None,
) -> None:
    """Adjust cache limits / enable the disk tier (tests, tooling).

    ``disk_max_bytes`` caps the total size of ``*.kbin`` files in the
    disk tier; whenever a store pushes past the cap, the oldest entries
    (by modification time) are deleted until the tier fits.  Pass ``0``
    or a negative value to lift a previously set cap.
    """
    global _max_entries, _disk_dir, _disk_max_bytes
    with _lock:
        if max_entries is not None:
            if max_entries < 1:
                raise ValueError("kcache needs at least one entry")
            _max_entries = max_entries
        if disk_dir is not None:
            _disk_dir = disk_dir or None
        if disk_max_bytes is not None:
            _disk_max_bytes = disk_max_bytes if disk_max_bytes > 0 else None
        _evict_over_limit_locked()
    _evict_disk_over_limit()


def disk_dir() -> Optional[str]:
    """The disk-tier directory, or ``None`` when the tier is off."""
    return _disk_dir


def disk_max_bytes() -> Optional[int]:
    """The disk-tier size cap in bytes, or ``None`` when unbounded."""
    return _disk_max_bytes


def clear() -> None:
    """Drop every in-memory entry (the disk tier is left alone)."""
    with _lock:
        _entries.clear()


def stats() -> KCacheStats:
    """A snapshot of the cumulative cache statistics."""
    with _lock:
        return KCacheStats(**_stats.as_dict())


def reset_stats() -> None:
    """Zero the statistics (the cached entries are untouched)."""
    global _stats
    with _lock:
        _stats = KCacheStats()


def _count(event: str, n: int = 1) -> None:
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count(f"kcache.{event}", n)


def _evict_over_limit_locked() -> None:
    while len(_entries) > _max_entries:
        _entries.popitem(last=False)
        _stats.evictions += 1
        _count("evict")


def _disk_path(key: str) -> Optional[str]:
    if _disk_dir is None:
        return None
    return os.path.join(_disk_dir, f"{key}.kbin")


def _disk_load(key: str) -> Optional[Any]:
    """Rebuild a CompiledModule from a persisted IR 'binary', if any."""
    path = _disk_path(key)
    if path is None or not os.path.exists(path):
        return None
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if payload.get("version") != DISK_FORMAT_VERSION:
            return None
        from .kir.pycodegen import CompiledModule

        return CompiledModule(payload["module"])
    except Exception:
        # A corrupt or stale entry silently falls back to a fresh build.
        return None


def _disk_store(key: str, compiled: Any) -> None:
    path = _disk_path(key)
    if path is None:
        return
    try:
        os.makedirs(_disk_dir, exist_ok=True)  # type: ignore[arg-type]
        payload = {"version": DISK_FORMAT_VERSION, "module": compiled.module}
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh)
        os.replace(tmp, path)
    except Exception:
        return
    with _lock:
        _stats.disk_stores += 1
    _count("disk_store")
    _evict_disk_over_limit()


def _evict_disk_over_limit() -> None:
    """Delete oldest-mtime ``*.kbin`` entries until the tier fits the cap."""
    if _disk_dir is None or _disk_max_bytes is None:
        return
    try:
        names = os.listdir(_disk_dir)
    except OSError:
        return
    entries = []
    total = 0
    for name in names:
        if not name.endswith(".kbin"):
            continue
        path = os.path.join(_disk_dir, name)
        try:
            st = os.stat(path)
        except OSError:
            continue
        entries.append((st.st_mtime, path, st.st_size))
        total += st.st_size
    entries.sort()  # oldest modification time first; path breaks ties
    evicted = 0
    for _, path, size in entries:
        if total <= _disk_max_bytes:
            break
        try:
            os.remove(path)
        except OSError:
            continue
        total -= size
        evicted += 1
    if evicted:
        with _lock:
            _stats.disk_evictions += evicted
        _count("disk_evict", evicted)


def _lookup(key: str) -> Optional[Any]:
    with _lock:
        compiled = _entries.get(key)
        if compiled is not None:
            _entries.move_to_end(key)
            _stats.hits += 1
    if compiled is not None:
        _count("hit")
    return compiled


def _insert(key: str, compiled: Any, from_disk: bool) -> None:
    with _lock:
        _entries[key] = compiled
        _entries.move_to_end(key)
        _stats.misses += 1
        if from_disk:
            _stats.disk_hits += 1
        _evict_over_limit_locked()
    _count("miss")
    if from_disk:
        _count("disk_hit")


def get_or_build(
    source: str,
    spec: Any = None,
    options: str = "",
    builder: Optional[Callable[[str], Any]] = None,
) -> Any:
    """Return the CompiledModule for *source* on *spec*, compiling once.

    Build failures propagate to the caller and are never cached.
    """
    key = fingerprint(source, spec, options)
    compiled = _lookup(key)
    if compiled is not None:
        return compiled
    compiled = _disk_load(key)
    if compiled is not None:
        _insert(key, compiled, from_disk=True)
        return compiled
    if builder is None:
        from . import kernelc

        builder = kernelc.build
    compiled = builder(source)
    _insert(key, compiled, from_disk=False)
    _disk_store(key, compiled)
    return compiled


def get_or_build_module(
    module: Any, spec: Any = None, options: str = ""
) -> Any:
    """Like :func:`get_or_build` for an already-lowered IR module."""
    key = module_fingerprint(module, spec, options)
    compiled = _lookup(key)
    if compiled is not None:
        return compiled
    compiled = _disk_load(key)
    if compiled is not None:
        _insert(key, compiled, from_disk=True)
        return compiled
    from .kir import compile_module

    compiled = compile_module(module)
    _insert(key, compiled, from_disk=False)
    _disk_store(key, compiled)
    return compiled
